"""Result containers and fixed-width table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.evaluation.protocol import AggregateResult
from repro.exceptions import DataError


@dataclass
class MethodResult:
    """Outcome of one method on one scenario (single round)."""

    method: str
    accuracy: float
    predictions: Optional[np.ndarray] = None
    extra: Dict[str, float] = field(default_factory=dict)


class ResultTable:
    """A named table of rows, each mapping column name → value.

    Values may be floats, strings or :class:`AggregateResult` objects; the
    renderer formats aggregates as ``mean ±std`` exactly like the paper's
    Table 2.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise DataError("a result table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self._rows: List[Dict[str, object]] = []

    def add_row(self, **values) -> None:
        """Append a row; every table column must be provided."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise DataError(f"row is missing columns: {missing}")
        self._rows.append({column: values[column] for column in self.columns})

    @property
    def rows(self) -> List[Dict[str, object]]:
        return [dict(row) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self._rows]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, AggregateResult):
            return str(value)
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        """Fixed-width rendering suitable for printing from the benchmarks."""
        formatted = [[self._format(row[c]) for c in self.columns] for row in self._rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in formatted)) if formatted else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(f"{name:<{widths[i]}}" for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(f"{cell:<{widths[i]}}" for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_csv_rows(self) -> List[Dict[str, object]]:
        """Rows with aggregates flattened to ``mean``/``std`` columns (for CSV export)."""
        flattened = []
        for row in self._rows:
            out: Dict[str, object] = {}
            for column, value in row.items():
                if isinstance(value, AggregateResult):
                    out[f"{column}_mean"] = value.mean
                    out[f"{column}_std"] = value.std
                else:
                    out[column] = value
            flattened.append(out)
        return flattened
