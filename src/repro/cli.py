"""Command-line interface.

``pilote <experiment>`` (or ``python -m repro <experiment>``) regenerates one
of the paper's tables/figures and prints it::

    pilote table2 --scale quick
    pilote figure6 --scale default
    pilote edge --scale quick

Beyond the paper, ``pilote fleet-sim`` runs the multi-device fleet serving
simulation (:mod:`repro.fleet.simulation`); ``--devices`` overrides the fleet
size of the default scenario, ``--routing {hash,least-loaded,p2c}`` picks
the serving client's routing policy, ``--scheduling {fifo,edf}`` its queue
order (arrival order vs earliest-deadline-first), ``--deadline-ms``
attaches seeded per-request deadlines to the generated traffic (reported as
a served/missed/expired SLO breakdown), and ``--executor
{serial,thread,process}`` with ``--workers N`` picks where batches execute
(the serial default models the simulated parallel clock; thread/process run
real shared-memory or multi-process workers and report measured wall-clock
latency).  Past 1024 devices (or with an explicit ``--regions N``) the fleet
runs on the hierarchical coordinator — pooled per-region device state and
delta snapshot shipping make ``--devices 1000000`` tractable.  ``pilote serve`` answers one seeded workload through all three
serving layers (bare learner, MAGNETO platform, fleet) over the unified
:mod:`repro.serving` API.

``pilote fleet-sim --adaptive`` attaches the self-tuning control plane
(:mod:`repro.control`) to the simulation's serving client — load-shedding
admission control, hedged requests, pool autoscaling — and reports each
controller's counters; ``pilote chaos`` runs the failure-injection suite
(worker-death storms, stragglers, mid-stream restart) in both adaptive and
static mode and exits non-zero unless every run proves exactly-once
delivery (``--chaos-scenario`` narrows it to one scenario).

``pilote lint`` runs the repo's own static invariant linter
(:mod:`repro.analysis`) over ``src/repro`` — seeded-RNG discipline, the
simulated-vs-wall clock split, the typed serving-error taxonomy, registry
completeness, lock/callback ordering, ``to_dict``/``from_dict`` round-trips —
and exits non-zero on findings; ``--format json`` emits a machine-readable
report and ``--select`` narrows the run to a comma-separated rule-id list.
``pilote chaos --sanitize`` (or ``REPRO_SANITIZE=1``) runs the failure suite
under the runtime race sanitizer, which asserts the stack's single-writer
discipline while the chaos scenarios execute.

``pilote serve-net`` opens the network front door (:mod:`repro.server`):
it builds a serving fleet and answers real socket traffic on
``--host``/``--port`` for ``--duration`` seconds (``0`` = until
interrupted); ``--deadline-ms`` here is the end-to-end SLO target the
stats report measures against.  ``pilote bench-client`` is the matching
closed-loop load generator: ``--requests``/``--connections``/``--window``
shape the load, ``--pattern`` the user popularity; pointed at a running
server with ``--port``, or self-hosting a loopback server (built from the
fleet flags) when ``--port`` is omitted.

The ``--scale`` flag picks an :class:`~repro.experiments.common.ExperimentSettings`
preset (``quick``, ``default`` or ``paper``).

``--backend sharded --shards N`` runs the chosen experiment's learners on
the sharded collective backend (:mod:`repro.backend.sharded`): exemplar
herding, prototype refresh and grouped means are partitioned across a
persistent ``N``-worker pool and recombined through fixed-order collectives,
bit-exact with the single-process default.  One pool serves the whole run
and is shut down on exit.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.backend import BACKENDS, make_backend, use_backend
from repro.backend.sharded import ShardedBackend
from repro.experiments import (
    ablations,
    edge_resources,
    figure4,
    figure5,
    figure6,
    figure7,
    multi_increment,
    table2,
)
from repro.control import CHAOS_SCENARIOS
from repro.control import simulation as control_simulation
from repro.experiments.common import ExperimentSettings
from repro.fleet import simulation as fleet_simulation
from repro.fleet.traffic import PATTERNS
from repro.server import simulation as server_simulation
from repro.serving import EXECUTORS, ROUTING_POLICIES, SCHEDULING_ORDERS
from repro.serving import simulation as serving_simulation
from repro.utils.logging import enable_console_logging

_EXPERIMENTS: Dict[str, Callable] = {
    "table2": lambda settings: table2.run(settings),
    "figure4": lambda settings: figure4.run(settings),
    "figure5": lambda settings: figure5.run(settings),
    "figure6": lambda settings: figure6.run(settings),
    "figure7": lambda settings: figure7.run(settings),
    "ablations": lambda settings: ablations.run(settings),
    "edge": lambda settings: edge_resources.run(settings),
    "multi-increment": lambda settings: multi_increment.run(settings),
    "fleet-sim": lambda settings, **kw: fleet_simulation.run(settings, **kw),
    "serve": lambda settings, **kw: serving_simulation.run(settings, **kw),
    "serve-net": lambda settings, **kw: server_simulation.run_server(settings, **kw),
    "bench-client": lambda settings, **kw: server_simulation.run_bench(settings, **kw),
    "chaos": lambda settings, **kw: control_simulation.run(settings, **kw),
    "lint": None,  # special-cased in main(): no experiment settings involved
}

#: Subcommands that take the serving flags (--devices / --routing).
_SERVING_EXPERIMENTS = ("fleet-sim", "serve")

#: Subcommands that speak the network front door (serve-net / bench-client).
_NETWORK_EXPERIMENTS = ("serve-net", "bench-client")

_SCALES = {
    "quick": ExperimentSettings.quick,
    "default": ExperimentSettings.default,
    "paper": ExperimentSettings.paper_scale,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pilote",
        description="Regenerate the PILOTE paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=sorted(_EXPERIMENTS), help="experiment to run")
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="experiment scale preset (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=7, help="base random seed")
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="compute backend the experiment's learners run on: numpy "
        "(single-process; the default) or sharded (a data-parallel worker "
        "pool with bit-exact fixed-order collectives)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker count for --backend sharded "
        "(default: one shard per CPU core)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        help="fleet size for the fleet-sim/serve experiments (default: scenario's 8)",
    )
    parser.add_argument(
        "--routing",
        choices=sorted(ROUTING_POLICIES),
        default=None,
        help="serving routing policy for fleet-sim/serve (default: scenario's hash)",
    )
    parser.add_argument(
        "--scheduling",
        choices=sorted(SCHEDULING_ORDERS),
        default=None,
        help="serving queue order for fleet-sim/serve: fifo (arrival order) "
        "or edf (earliest deadline first; default: fifo)",
    )
    parser.add_argument(
        "--deadline-ms",
        dest="deadline_ms",
        type=float,
        default=None,
        help="mean per-request deadline for fleet-sim traffic in simulated "
        "milliseconds (default: no deadlines); only valid with the serial "
        "executor, whose simulated clock matches the generated arrivals "
        "(thread/process serve on the measured wall clock)",
    )
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default=None,
        help="batch executor for fleet-sim: serial (inline, simulated clock; "
        "default), thread, or process (real multi-process workers reporting "
        "measured wall-clock latency)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size for --executor thread/process "
        "(default: one per CPU core, capped at the device count)",
    )
    parser.add_argument(
        "--regions",
        type=int,
        default=None,
        help="regional shard count for fleet-sim's hierarchical coordinator "
        "(default: automatic — flat below 1024 devices, up to 64 regions "
        "above; forcing a value always selects the hierarchical fleet)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen/connect address for serve-net and bench-client "
        "(default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port: serve-net listens here (default 7431; 0 picks a free "
        "port); bench-client connects here, or self-hosts a loopback server "
        "when omitted",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve-net serving window in seconds (default 10; 0 serves "
        "until interrupted)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="bench-client request count (default 256)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=None,
        help="bench-client concurrent connections (default 2)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="bench-client per-connection in-flight window (default 16)",
    )
    parser.add_argument(
        "--pattern",
        choices=sorted(PATTERNS),
        default=None,
        help="bench-client user-popularity pattern (default zipf)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="attach the self-tuning control plane (load shedding, hedged "
        "requests, pool autoscaling) to fleet-sim's serving client",
    )
    parser.add_argument(
        "--chaos-scenario",
        dest="chaos_scenario",
        choices=sorted(CHAOS_SCENARIOS),
        default=None,
        help="run only this chaos scenario (default: the whole suite)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the chaos suite under the runtime race sanitizer "
        "(single-writer invariant over scheduler/stats/signal-bus state); "
        "also enabled by REPRO_SANITIZE=1",
    )
    parser.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "json"),
        default="text",
        help="lint report format (default: text)",
    )
    parser.add_argument(
        "--select",
        dest="lint_select",
        default=None,
        metavar="RULES",
        help="comma-separated lint rule ids to run (default: all; "
        "see repro.analysis.list_rules)",
    )
    parser.add_argument(
        "--path",
        dest="lint_path",
        default=None,
        help="tree to lint (default: the installed repro package source)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="enable progress logging to stderr"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.verbose:
        enable_console_logging()
    settings = _SCALES[arguments.scale](seed=arguments.seed)
    if arguments.chaos_scenario is not None and arguments.experiment != "chaos":
        parser.error("--chaos-scenario only applies to the chaos experiment")
    if arguments.sanitize and arguments.experiment != "chaos":
        parser.error("--sanitize only applies to the chaos experiment")
    if arguments.experiment != "lint":
        if arguments.lint_select is not None:
            parser.error("--select only applies to the lint experiment")
        if arguments.lint_path is not None:
            parser.error("--path only applies to the lint experiment")
    if arguments.adaptive and arguments.experiment != "fleet-sim":
        parser.error(
            "--adaptive attaches the control plane to fleet-sim's serving "
            "client (chaos always runs both adaptive and static modes)"
        )
    if arguments.shards is not None and arguments.backend != ShardedBackend.name:
        parser.error(
            "--shards sizes the sharded worker pool; pass --backend sharded "
            "with it"
        )
    if arguments.shards is not None and arguments.shards < 1:
        parser.error(f"--shards must be >= 1, got {arguments.shards}")
    if arguments.backend is not None and arguments.experiment == "lint":
        parser.error(
            "--backend picks a compute backend for experiment runs; "
            "lint is static analysis"
        )
    if arguments.experiment == "lint":
        return _run_lint(parser, arguments)
    with _cli_backend(arguments):
        return _run_experiment(parser, arguments, settings)


@contextlib.contextmanager
def _cli_backend(arguments):
    """Install the ``--backend`` choice as the ambient compute backend.

    One instance serves the whole run, so every learner the experiment
    builds shares the same shard pool; the pool is shut down (and the
    previous backend restored) when the run finishes, pass or fail.
    """
    if arguments.backend is None:
        yield None
        return
    if arguments.backend == ShardedBackend.name:
        backend = ShardedBackend(shards=arguments.shards)
    else:
        backend = make_backend(arguments.backend)
    try:
        with use_backend(backend):
            yield backend
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()


def _run_experiment(parser: argparse.ArgumentParser, arguments, settings) -> int:
    """Dispatch one experiment run (everything except ``lint``)."""
    if arguments.experiment == "chaos":
        from repro.analysis.sanitizer import sanitize_enabled

        result = _EXPERIMENTS["chaos"](
            settings,
            scenario=arguments.chaos_scenario,
            sanitize=arguments.sanitize or sanitize_enabled(),
        )
        print(result.to_text())
        return 0 if result.passed else 1
    if arguments.experiment in _SERVING_EXPERIMENTS:
        serving_kwargs = dict(
            n_devices=arguments.devices,
            routing=arguments.routing,
            scheduling=arguments.scheduling,
        )
        if arguments.experiment == "fleet-sim":
            # Fail the incoherent combinations at the parser, before any
            # dataset/fleet setup runs.
            concurrent = arguments.executor in ("thread", "process")
            if arguments.workers is not None and not concurrent:
                parser.error(
                    "--workers sizes a concurrent pool; pass --executor "
                    "thread or --executor process with it"
                )
            if arguments.deadline_ms is not None and concurrent:
                parser.error(
                    "--deadline-ms needs the serial executor: the generated "
                    "arrivals/deadlines are simulated-clock quantities, while "
                    "thread/process serve on the measured wall clock"
                )
            serving_kwargs["deadline_ms"] = arguments.deadline_ms
            serving_kwargs["executor"] = arguments.executor
            serving_kwargs["workers"] = arguments.workers
            serving_kwargs["regions"] = arguments.regions
            serving_kwargs["adaptive"] = arguments.adaptive
        else:
            if arguments.regions is not None:
                parser.error(
                    "--regions only applies to fleet-sim (the serve layer "
                    "comparison runs a flat single-digit fleet)"
                )
            if arguments.deadline_ms is not None:
                parser.error(
                    "--deadline-ms only applies to fleet-sim (the serve layer "
                    "comparison runs a deadline-less stream)"
                )
            if arguments.executor is not None or arguments.workers is not None:
                parser.error(
                    "--executor/--workers only apply to fleet-sim (the serve "
                    "layer comparison runs every layer on the serial executor)"
                )
        result = _EXPERIMENTS[arguments.experiment](settings, **serving_kwargs)
    elif arguments.experiment in _NETWORK_EXPERIMENTS:
        if arguments.executor == "serial" and arguments.workers is not None:
            parser.error(
                "--workers sizes a concurrent pool; it does not apply to "
                "--executor serial"
            )
        fleet_kwargs = dict(
            n_devices=arguments.devices,
            routing=arguments.routing,
            scheduling=arguments.scheduling,
            executor=arguments.executor,
            workers=arguments.workers,
            regions=arguments.regions,
        )
        if arguments.experiment == "serve-net":
            for flag, value in (
                ("--requests", arguments.requests),
                ("--connections", arguments.connections),
                ("--window", arguments.window),
                ("--pattern", arguments.pattern),
            ):
                if value is not None:
                    parser.error(
                        f"{flag} shapes bench-client load; serve-net is the "
                        "server side"
                    )
            network_kwargs = dict(
                host=arguments.host,
                port=arguments.port if arguments.port is not None else 7431,
                slo_target_ms=arguments.deadline_ms,
                **fleet_kwargs,
            )
            if arguments.duration is not None:
                network_kwargs["duration"] = arguments.duration
        else:
            if arguments.duration is not None:
                parser.error(
                    "--duration bounds serve-net's serving window; "
                    "bench-client stops when its requests are answered"
                )
            if arguments.port is not None and any(
                value is not None for value in fleet_kwargs.values()
            ):
                parser.error(
                    "the fleet flags (--devices/--routing/--scheduling/"
                    "--executor/--workers/--regions) configure bench-client's "
                    "self-hosted server; an external server at --port already "
                    "picked its own fleet"
                )
            network_kwargs = dict(
                host=arguments.host,
                port=arguments.port,
                deadline_ms=arguments.deadline_ms,
                **fleet_kwargs,
            )
            for key, value in (
                ("n_requests", arguments.requests),
                ("connections", arguments.connections),
                ("window", arguments.window),
                ("pattern", arguments.pattern),
            ):
                if value is not None:
                    network_kwargs[key] = value
        result = _EXPERIMENTS[arguments.experiment](settings, **network_kwargs)
    else:
        result = _EXPERIMENTS[arguments.experiment](settings)
    print(result.to_text())
    return 0


def _run_lint(parser: argparse.ArgumentParser, arguments) -> int:
    """``pilote lint``: run the static invariant linter, exit 1 on findings."""
    # Deferred import: the linter is tooling, not part of the serving path.
    import repro
    from repro.analysis import render_json, render_text, run_lint
    from repro.exceptions import AnalysisError

    if arguments.lint_path is not None:
        root = Path(arguments.lint_path)
    else:
        root = Path(repro.__file__).resolve().parent
    select = (
        [part.strip() for part in arguments.lint_select.split(",") if part.strip()]
        if arguments.lint_select is not None
        else None
    )
    try:
        findings = run_lint(root, select=select)
    except AnalysisError as error:
        parser.error(str(error))
    if arguments.lint_format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
