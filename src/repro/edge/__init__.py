"""Edge runtime: device resource model, cloud pre-training, transfer accounting, MAGNETO orchestration.

The paper's MAGNETO platform (Section 3) pre-trains an initial model on the
cloud and ships it — together with the exemplar support set — to the edge
device, where all further learning and inference happen without any data going
back to the cloud.  This package models that pipeline: storage/latency budgets
(:class:`EdgeDevice`), the cloud side (:class:`CloudServer`), the transfer
payload and its byte size (:class:`TransferPackage`), end-to-end orchestration
(:class:`MagnetoPlatform`) and a small profiler used by the Q2 experiments.
Serving runs through the batched :class:`InferenceEngine`, which caches the
prototype matrix and follows the learner's state version across incremental
updates.
"""

from repro.edge.device import DeviceProfile, EdgeDevice
from repro.edge.cloud import CloudServer
from repro.edge.inference import (
    EngineSnapshotDelta,
    EngineStateSnapshot,
    InferenceEngine,
    SnapshotEngine,
)
from repro.edge.transfer import TransferPackage, package_for_edge
from repro.edge.magneto import MagnetoPlatform
from repro.edge.profiler import EdgeProfiler, LatencyReport

__all__ = [
    "EdgeDevice",
    "DeviceProfile",
    "CloudServer",
    "InferenceEngine",
    "EngineStateSnapshot",
    "EngineSnapshotDelta",
    "SnapshotEngine",
    "TransferPackage",
    "package_for_edge",
    "MagnetoPlatform",
    "EdgeProfiler",
    "LatencyReport",
]
