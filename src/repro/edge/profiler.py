"""Latency and memory profiling for edge applicability (Q2).

The paper reports that with fewer than 200 exemplars per class PILOTE reaches
its accuracy "within 20 training epochs, and each epoch costs less than 0.5 s".
:class:`EdgeProfiler` measures the analogous quantities for this reproduction:
per-epoch wall-clock time of the incremental update, inference latency per
window, and the byte footprint of everything the edge stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.edge.device import DeviceProfile
from repro.exceptions import NotFittedError
from repro.utils.clock import perf_seconds
from repro.nn.trainer import TrainingHistory


@dataclass
class LatencyReport:
    """Timing and footprint numbers for one incremental update."""

    epochs_run: int
    total_seconds: float
    epoch_seconds: List[float] = field(default_factory=list)
    inference_seconds_per_window: float = 0.0
    support_set_bytes: int = 0
    model_bytes: int = 0
    #: Wall-clock per update phase (``"training"``, ``"herding"``,
    #: ``"prototype_refresh"``) as measured by the learner itself — the
    #: breakdown that says *which* phase the sharded backend actually
    #: accelerates, not just the total.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_epoch_seconds(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0

    @property
    def max_epoch_seconds(self) -> float:
        return float(np.max(self.epoch_seconds)) if self.epoch_seconds else 0.0

    def scaled_to(self, profile: DeviceProfile) -> "LatencyReport":
        """Extrapolate the timings to a slower device profile."""
        factor = 1.0 / profile.relative_compute
        return LatencyReport(
            epochs_run=self.epochs_run,
            total_seconds=self.total_seconds * factor,
            epoch_seconds=[value * factor for value in self.epoch_seconds],
            inference_seconds_per_window=self.inference_seconds_per_window * factor,
            support_set_bytes=self.support_set_bytes,
            model_bytes=self.model_bytes,
            phase_seconds={
                phase: value * factor for phase, value in self.phase_seconds.items()
            },
        )

    def summary(self) -> Dict[str, float]:
        report = {
            "epochs_run": self.epochs_run,
            "total_seconds": self.total_seconds,
            "mean_epoch_seconds": self.mean_epoch_seconds,
            "max_epoch_seconds": self.max_epoch_seconds,
            "inference_ms_per_window": self.inference_seconds_per_window * 1e3,
            "support_set_kilobytes": self.support_set_bytes / 1024,
            "model_kilobytes": self.model_bytes / 1024,
        }
        for phase in sorted(self.phase_seconds):
            report[f"{phase}_seconds"] = self.phase_seconds[phase]
        return report

    def to_dict(self) -> Dict[str, object]:
        return {
            "epochs_run": self.epochs_run,
            "total_seconds": self.total_seconds,
            "epoch_seconds": list(self.epoch_seconds),
            "inference_seconds_per_window": self.inference_seconds_per_window,
            "support_set_bytes": self.support_set_bytes,
            "model_bytes": self.model_bytes,
            "phase_seconds": dict(self.phase_seconds),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LatencyReport":
        return cls(
            epochs_run=int(payload["epochs_run"]),
            total_seconds=float(payload["total_seconds"]),
            epoch_seconds=[float(v) for v in payload.get("epoch_seconds", [])],
            inference_seconds_per_window=float(
                payload.get("inference_seconds_per_window", 0.0)
            ),
            support_set_bytes=int(payload.get("support_set_bytes", 0)),
            model_bytes=int(payload.get("model_bytes", 0)),
            phase_seconds={
                str(phase): float(value)
                for phase, value in dict(payload.get("phase_seconds", {})).items()
            },
        )


class EdgeProfiler:
    """Measures incremental-update latency and inference latency of a learner."""

    def __init__(self, inference_batch: int = 256) -> None:
        if inference_batch <= 0:
            raise ValueError(f"inference_batch must be positive, got {inference_batch}")
        self.inference_batch = int(inference_batch)

    def profile_increment(
        self,
        learner: PILOTE,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
        *,
        inference_data: Optional[HARDataset] = None,
    ) -> LatencyReport:
        """Time a full incremental update (and optionally inference afterwards)."""
        start = perf_seconds()
        history: TrainingHistory = learner.learn_new_classes(new_train, new_validation)
        total = perf_seconds() - start
        inference_seconds = 0.0
        if inference_data is not None and inference_data.n_samples > 0:
            inference_seconds = self.profile_inference(learner, inference_data)
        return LatencyReport(
            epochs_run=history.epochs_run,
            total_seconds=total,
            epoch_seconds=list(history.epoch_seconds),
            inference_seconds_per_window=inference_seconds,
            support_set_bytes=learner.support_set_nbytes(),
            model_bytes=learner.model_nbytes(),
            phase_seconds=dict(getattr(learner, "phase_seconds", {}) or {}),
        )

    def profile_inference(self, learner: PILOTE, dataset: HARDataset) -> float:
        """Mean prediction latency per window (seconds)."""
        if not learner.is_pretrained:
            raise NotFittedError("the learner must be trained before profiling inference")
        take = min(self.inference_batch, dataset.n_samples)
        features = dataset.features[:take]
        start = perf_seconds()
        learner.predict(features)
        elapsed = perf_seconds() - start
        return elapsed / take
