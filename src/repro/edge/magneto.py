"""MAGNETO platform orchestration (Figure 2, right side).

The platform object wires the pieces end to end:

1. the cloud pre-trains an initial model on the initially known activities;
2. the model + support set are packaged and "shipped" to an edge device
   (storage accounting included);
3. the edge device performs incremental updates with newly collected
   activities and serves predictions — without ever sending data back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.edge.cloud import CloudServer
from repro.edge.device import DeviceProfile, EdgeDevice
from repro.edge.transfer import TransferPackage
from repro.exceptions import NotFittedError
from repro.nn.trainer import TrainingHistory
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.coordinator import FleetCoordinator
    from repro.serving.client import ServingClient

logger = get_logger("edge.magneto")


class MagnetoPlatform:
    """End-to-end cloud → edge incremental-learning pipeline."""

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        device_profile: Optional[DeviceProfile] = None,
        seed: RandomState = None,
    ) -> None:
        self.config = config or PiloteConfig()
        self.cloud = CloudServer(self.config, seed=seed)
        self.device = EdgeDevice(device_profile)
        self.package: Optional[TransferPackage] = None
        self.edge_learner: Optional[PILOTE] = None
        self.increment_histories: List[TrainingHistory] = []
        self._serving_client = None  # cached default repro.serving client

    # ------------------------------------------------------------------ #
    def cloud_pretrain(
        self,
        train: HARDataset,
        validation: Optional[HARDataset] = None,
        *,
        exemplars_per_class: Optional[int] = None,
    ) -> TrainingHistory:
        """Step 1: pre-train the warm-start model on the cloud."""
        self.cloud.pretrain(train, validation, exemplars_per_class=exemplars_per_class)
        assert self.cloud.history is not None
        return self.cloud.history

    def deploy_to_edge(self) -> TransferPackage:
        """Step 2: package the model + support set and store them on the device."""
        if self.cloud.learner is None:
            raise NotFittedError("cloud_pretrain() must run before deploy_to_edge()")
        package = self.cloud.export_package()
        self.device.store("model", package.model_bytes)
        self.device.store("support_set", package.support_set_bytes)
        self.device.store("prototypes", package.prototype_bytes)
        # The edge learner continues from the cloud learner's exact state.
        self.edge_learner = self.cloud.learner
        # Serving goes through the device's batched engine; the engine tracks
        # the learner's state version, so later increments invalidate its
        # prototype cache automatically.
        self.device.attach_inference(self.edge_learner.inference_engine())
        self.package = package
        logger.info(
            "deployed %.2f KB to edge device '%s' (%.2f KB free)",
            package.total_bytes / 1024,
            self.device.profile.name,
            self.device.storage_free / 1024,
        )
        return package

    def edge_learn_new_activity(
        self,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
    ) -> TrainingHistory:
        """Step 3: incremental learning of newly collected activities on the edge."""
        if self.edge_learner is None:
            raise NotFittedError("deploy_to_edge() must run before edge learning")
        history = self.edge_learner.learn_new_classes(new_train, new_validation)
        self.increment_histories.append(history)
        # Refresh the storage ledger: the support set now also contains new-class exemplars.
        self.device.store("support_set", self.edge_learner.support_set_nbytes())
        self.device.store("prototypes", self.edge_learner.prototypes.nbytes())
        return history

    def _serve_edge(self, features: np.ndarray) -> np.ndarray:
        """Raw single-device serving path behind the unified client."""
        if self.edge_learner is None:
            raise NotFittedError("the edge learner is not initialised")
        if self.device.engine is not None:
            return self.device.serve(features)
        return self.edge_learner.predict(features)

    def serving_client(self, **kwargs) -> "ServingClient":
        """The platform's unified serving client (cached without options).

        Equivalent to ``repro.serving.serve(platform)``; keyword arguments
        (``routing``, ``seed``) are forwarded and bypass the cache.
        """
        from repro.serving.client import serve

        if kwargs:
            return serve(self, **kwargs)
        if self._serving_client is None:
            self._serving_client = serve(self)
        return self._serving_client

    def edge_predict(self, features: np.ndarray) -> np.ndarray:
        """Step 4: on-device batched inference (deprecated entry point).

        .. deprecated::
            Use ``platform.serving_client().predict(features)`` — or
            ``repro.serving.serve(platform)`` for deadlines, futures and
            per-request metadata.  This shim delegates to that client, so
            output and device accounting are identical to the new path.
        """
        import warnings

        warnings.warn(
            "MagnetoPlatform.edge_predict is deprecated; use "
            "repro.serving.serve(platform).predict(features) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if np.asarray(features).shape[0] == 0:
            # The protocol rejects empty requests; the legacy path answered
            # them with an empty prediction array — preserve that here.
            return self._serve_edge(features)
        return self.serving_client().predict(features)

    # ------------------------------------------------------------------ #
    def to_fleet(self, n_devices: int, profiles=None) -> "FleetCoordinator":
        """Scale this platform out to ``n_devices`` independently-learning devices.

        The cloud's pre-trained package is broadcast to a freshly provisioned
        fleet (:class:`repro.fleet.FleetCoordinator`); each device receives
        its own learner copy and serving engine, so per-device increments and
        request routing can proceed from here.  Requires
        :meth:`cloud_pretrain` to have run.
        """
        from repro.fleet.coordinator import FleetCoordinator  # avoid an import cycle

        if self.cloud.learner is None:
            raise NotFittedError("cloud_pretrain() must run before to_fleet()")
        fleet = FleetCoordinator(
            self.config,
            profiles=profiles or (self.device.profile,),
            seed=self.cloud._seed,
        )
        fleet.provision(n_devices)
        fleet.deploy(self.cloud.export_package())
        return fleet

    # ------------------------------------------------------------------ #
    def storage_report(self) -> Dict[str, int]:
        """Current storage ledger of the edge device."""
        report = dict(self.device.allocations())
        report["free_bytes"] = self.device.storage_free
        return report
