"""Edge-device resource model.

The Q2 experiments reason about storage budgets ("2500 exemplars in compressed
format would take 3.2 MB of space", "less than 200 exemplars per class, i.e.
< 256 KB") and per-epoch latency.  :class:`EdgeDevice` tracks a storage budget
in bytes and refuses allocations that would exceed it, which lets the
experiment harness enforce edge constraints explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.backend import precision
from repro.exceptions import EdgeResourceError, NotFittedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.edge.inference import InferenceEngine


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of an edge device's resources.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"smartphone"``, ``"wearable"``).
    storage_bytes:
        Persistent storage available for the model and support set.
    memory_bytes:
        Working memory available during training.
    relative_compute:
        Compute speed relative to the reference machine running the
        experiments (1.0 = same speed); used to extrapolate epoch latency.
    """

    name: str
    storage_bytes: int
    memory_bytes: int
    relative_compute: float = 1.0
    compute_dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.storage_bytes <= 0 or self.memory_bytes <= 0:
            raise EdgeResourceError("storage and memory budgets must be positive")
        if self.relative_compute <= 0:
            raise EdgeResourceError("relative_compute must be positive")
        if self.compute_dtype not in ("float32", "float64"):
            raise EdgeResourceError(
                f"compute_dtype must be 'float32' or 'float64', got {self.compute_dtype!r}"
            )


#: A handful of representative device profiles used in examples and benchmarks.
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "smartphone": DeviceProfile("smartphone", storage_bytes=64 * 2**20, memory_bytes=512 * 2**20,
                                relative_compute=0.5),
    "wearable": DeviceProfile("wearable", storage_bytes=8 * 2**20, memory_bytes=64 * 2**20,
                              relative_compute=0.1),
    "raspberry-pi": DeviceProfile("raspberry-pi", storage_bytes=128 * 2**20, memory_bytes=1024 * 2**20,
                                  relative_compute=0.3),
}


class EdgeDevice:
    """A stateful edge device with a storage ledger.

    The device stores named artefacts (model weights, support set, prototypes)
    and raises :class:`~repro.exceptions.EdgeResourceError` when an allocation
    would exceed the storage budget — the mechanism by which experiments detect
    configurations that do not fit the edge.
    """

    def __init__(self, profile: Optional[DeviceProfile] = None) -> None:
        self.profile = profile or DEVICE_PROFILES["smartphone"]
        self._allocations: Dict[str, int] = {}
        self._engine: Optional["InferenceEngine"] = None
        self.inference_requests = 0

    # ------------------------------------------------------------------ #
    @property
    def storage_used(self) -> int:
        return int(sum(self._allocations.values()))

    @property
    def storage_free(self) -> int:
        return self.profile.storage_bytes - self.storage_used

    def allocations(self) -> Dict[str, int]:
        """Copy of the current storage ledger."""
        return dict(self._allocations)

    # ------------------------------------------------------------------ #
    def store(self, name: str, nbytes: int) -> None:
        """Record an artefact of ``nbytes`` bytes; replaces an existing entry."""
        if nbytes < 0:
            raise EdgeResourceError(f"artefact size must be non-negative, got {nbytes}")
        projected = self.storage_used - self._allocations.get(name, 0) + nbytes
        if projected > self.profile.storage_bytes:
            raise EdgeResourceError(
                f"storing {name!r} ({nbytes} B) would exceed the {self.profile.name} "
                f"storage budget of {self.profile.storage_bytes} B "
                f"(currently used: {self.storage_used} B)"
            )
        self._allocations[name] = int(nbytes)

    def free(self, name: str) -> None:
        """Remove an artefact from the ledger."""
        self._allocations.pop(name, None)

    def can_store(self, nbytes: int) -> bool:
        """Whether an additional artefact of ``nbytes`` would fit."""
        return nbytes <= self.storage_free

    def estimate_epoch_seconds(self, measured_seconds: float) -> float:
        """Extrapolate a measured epoch duration to this device's compute speed."""
        if measured_seconds < 0:
            raise EdgeResourceError("measured_seconds must be non-negative")
        return measured_seconds / self.profile.relative_compute

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def precision(self):
        """Scoped dtype policy matching this device's profile.

        Usage: ``with device.precision(): learner.learn_new_classes(...)`` —
        everything inside runs in the profile's compute dtype (``float32``
        for the stock edge profiles).
        """
        return precision(self.profile.compute_dtype)

    def attach_inference(self, engine: "InferenceEngine") -> "InferenceEngine":
        """Install the serving engine this device answers requests with."""
        self._engine = engine
        return engine

    @property
    def engine(self) -> Optional["InferenceEngine"]:
        return self._engine

    def serve(self, windows: np.ndarray) -> np.ndarray:
        """Serve a batch of windows through the attached inference engine."""
        if self._engine is None:
            raise NotFittedError(
                f"device {self.profile.name!r} has no inference engine attached; "
                "call attach_inference(learner.inference_engine()) before serving"
            )
        self.inference_requests += 1
        return self._engine.predict(windows)

    def infer(self, windows: np.ndarray) -> np.ndarray:
        """Deprecated direct entry point; prefer the unified serving client.

        .. deprecated::
            Use ``repro.serving.serve(device).predict(windows)`` (or
            :meth:`serve` for the raw engine call).  This shim delegates
            through a cached :class:`~repro.serving.ServingClient`, so the
            output — and the ``inference_requests`` accounting — is identical
            to the new path.
        """
        import warnings

        warnings.warn(
            "EdgeDevice.infer is deprecated; build a client with "
            "repro.serving.serve(device) and use predict()/submit() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if np.asarray(windows).shape[0] == 0:
            # The protocol rejects empty requests; the legacy path answered
            # them with an empty prediction array — preserve that here.
            return self.serve(windows)
        client = getattr(self, "_serving_client", None)
        if client is None:
            from repro.serving.client import serve

            client = serve(self)
            self._serving_client = client
        return client.predict(windows)
