"""Cloud-side pre-training service.

In the MAGNETO architecture the cloud's only role is to produce the initial
model ("warm starting point") and the exemplar support set from the initially
available activities, and to hand both to the edge device.  No edge data ever
flows back.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.edge.transfer import TransferPackage, package_for_edge
from repro.exceptions import NotFittedError
from repro.nn.trainer import TrainingHistory
from repro.utils.rng import RandomState


class CloudServer:
    """Pre-trains PILOTE models on the cloud and packages them for the edge."""

    def __init__(self, config: Optional[PiloteConfig] = None, seed: RandomState = None) -> None:
        self.config = config or PiloteConfig()
        self._seed = seed
        self.learner: Optional[PILOTE] = None
        self.history: Optional[TrainingHistory] = None

    def pretrain(
        self,
        train: HARDataset,
        validation: Optional[HARDataset] = None,
        *,
        exemplars_per_class: Optional[int] = None,
    ) -> PILOTE:
        """Run cloud pre-training and return the resulting learner."""
        self.learner = PILOTE(self.config, seed=self._seed)
        self.history = self.learner.pretrain(
            train, validation, exemplars_per_class=exemplars_per_class
        )
        return self.learner

    def export_package(self) -> TransferPackage:
        """Package the pre-trained model + support set for transfer to the edge."""
        if self.learner is None:
            raise NotFittedError("pretrain() must be called before export_package()")
        return package_for_edge(self.learner)
