"""Batched on-device serving engine.

``PILOTE.predict`` is fine for a single window but does redundant work when a
device serves a stream: every call re-derives the classifier state and walks
the whole embed→distance→argmin pipeline per request.  The
:class:`InferenceEngine` is the serving-side counterpart of the learner:

* it **serves from cached prototype state**: the class-id lookup array is
  rebuilt only when the learner's ``state_version`` changes, and the
  prototype matrix comes from the classifier's own cache (keyed on the
  prototype store's mutation counter and the dtype policy) — so incremental
  updates (``learn_new_classes``, ``build_support_set``) and even direct
  prototype mutations invalidate transparently;
* it **accepts many windows at once** and processes them in bounded batches,
  keeping peak memory flat on resource-starved devices;
* it **shares the exact kernels** of the NCM classifier (same backend
  distance GEMM, same ``take``-based id mapping), so batched predictions
  match the unbatched learner path at equal dtype.

The engine holds a reference to its learner rather than copied state: after
an on-device incremental update the very next ``predict`` call serves the
new classes with no explicit re-wiring.

When serving must leave the process — the multi-process
:class:`~repro.serving.ProcessExecutor` runs one worker per lane group —
the live-learner reference cannot travel.  :meth:`InferenceEngine
.state_snapshot` captures everything ``predict`` needs as one picklable
:class:`EngineStateSnapshot` (model weights, prototype matrix, class-id
lookup, metric, compute dtype) keyed by ``PILOTE.state_version``, and
:class:`SnapshotEngine` rebuilds the exact batched serving path from it on
the remote side — bit-identical predictions, no learner, no gradient
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.backend import default_dtype, get_backend, precision, resolve_dtype
from repro.exceptions import (
    DataError,
    NotFittedError,
    SnapshotMismatchError,
    StaleSnapshotError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports edge lazily)
    from repro.core.config import PiloteConfig
    from repro.core.pilote import PILOTE


class InferenceEngine:
    """Batched NCM serving over a (possibly still-learning) PILOTE learner.

    Parameters
    ----------
    learner:
        The :class:`~repro.core.pilote.PILOTE` instance to serve.  The engine
        follows the learner's state: caches are keyed by
        ``learner.state_version``.
    batch_size:
        Maximum number of windows embedded per internal step; bounds peak
        working memory during large requests.
    """

    def __init__(self, learner: "PILOTE", *, batch_size: int = 256) -> None:
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        self._learner = learner
        self.batch_size = int(batch_size)
        self._cached_version: Optional[int] = None
        self._classifier = None
        self._class_ids: Optional[np.ndarray] = None
        self.windows_served = 0
        self.batches_served = 0
        self.cache_refreshes = 0

    # ------------------------------------------------------------------ #
    @property
    def learner(self) -> "PILOTE":
        return self._learner

    def invalidate(self) -> None:
        """Force a prototype-cache rebuild on the next request."""
        self._cached_version = None

    def warm(self) -> None:
        """Build the serving caches ahead of the first request.

        Performs exactly the refresh the first ``predict`` call would —
        re-binding the classifier, materialising the class-id lookup and the
        prototype matrix under the active dtype policy — so a freshly
        deployed or checkpoint-restored device answers its first request at
        full speed instead of paying the rebuild inside that request's
        latency.  Counted in ``cache_refreshes`` like any other rebuild; a
        no-op when the caches are already current.
        """
        self._refresh_if_stale()
        assert self._classifier is not None
        self._classifier.prototype_matrix()

    def _refresh_if_stale(self) -> None:
        """Re-bind the learner's classifier when its state version moved.

        The prototype matrix itself is *not* copied here: the classifier
        already caches it keyed on the prototype store's mutation counter and
        the dtype policy, so direct store mutations and precision switches
        propagate to the engine without an extra invalidation channel.
        """
        learner = self._learner
        if learner.model is None:
            raise NotFittedError("the learner behind this engine has not been trained")
        learner._ensure_classifier()
        if self._cached_version == learner.state_version:
            return
        self._classifier = learner.classifier
        self._class_ids = np.asarray(self._classifier.classes_, dtype=np.int64)
        self._cached_version = learner.state_version
        self.cache_refreshes += 1

    def cache_info(self) -> Dict[str, int]:
        """Serving statistics (useful for benchmarks and monitoring)."""
        return {
            "windows_served": self.windows_served,
            "batches_served": self.batches_served,
            "cache_refreshes": self.cache_refreshes,
            "cached_classes": 0 if self._class_ids is None else int(self._class_ids.size),
        }

    # ------------------------------------------------------------------ #
    def _distances(self, windows: np.ndarray) -> np.ndarray:
        """``(n, n_classes)`` prototype distances for many raw windows."""
        self._refresh_if_stale()
        assert self._classifier is not None
        backend = get_backend()
        windows = backend.asarray(windows)
        if windows.ndim == 1:
            windows = windows[None, :]
        prototypes = self._classifier.prototype_matrix()
        metric = self._classifier.metric
        if windows.shape[0] == 0:
            return backend.zeros((0, prototypes.shape[0]))
        chunks = []
        for start in range(0, windows.shape[0], self.batch_size):
            chunk = windows[start:start + self.batch_size]
            embeddings = self._learner.embed(chunk)
            chunks.append(
                backend.pairwise_distances(embeddings, prototypes, metric=metric)
            )
            self.batches_served += 1
        self.windows_served += int(windows.shape[0])
        return np.concatenate(chunks, axis=0)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class ids for a batch of raw feature windows."""
        distances = self._distances(windows)
        assert self._class_ids is not None
        return self._class_ids.take(np.argmin(distances, axis=1))

    def predict_scores(self, windows: np.ndarray) -> np.ndarray:
        """Soft class scores (softmax over negative prototype distances)."""
        distances = self._distances(windows)
        logits = -distances
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------ #
    def state_snapshot(self, *, compute_dtype=None) -> "EngineStateSnapshot":
        """Picklable snapshot of everything ``predict`` needs, sans learner.

        ``compute_dtype`` is the dtype the remote replica will serve under
        (a device profile's ``compute_dtype``, or the current policy dtype
        when omitted); the prototype matrix is materialised in that dtype so
        the remote GEMMs are bit-identical to the live engine's.  The
        snapshot is keyed by the learner's ``state_version`` — executors
        compare it against the live version and re-ship on staleness (an
        incremental update or a fresh broadcast bumps the version).
        """
        dtype = (
            resolve_dtype(compute_dtype) if compute_dtype is not None else default_dtype()
        )
        with precision(dtype):
            self._refresh_if_stale()
            assert self._classifier is not None and self._class_ids is not None
            prototypes = np.array(self._classifier.prototype_matrix(), copy=True)
        learner = self._learner
        return EngineStateSnapshot(
            state_version=learner.state_version,
            batch_size=self.batch_size,
            metric=self._classifier.metric,
            compute_dtype=str(prototypes.dtype),
            class_ids=self._class_ids.copy(),
            prototypes=prototypes,
            model_state={
                key: np.array(value, copy=True)
                for key, value in learner.model.state_dict().items()
            },
            input_dim=learner.model.input_dim,
            config=learner.config,
        )


@dataclass(frozen=True)
class EngineStateSnapshot:
    """Serializable serving state of one :class:`InferenceEngine`.

    Plain numpy payloads plus the (picklable) learner configuration —
    everything :class:`SnapshotEngine` needs to reproduce the engine's
    predictions in another process, and nothing else (no exemplar support
    set, no optimizer state, no live object references).  ``state_version``
    is the staleness key: a snapshot taken at version *v* serves exactly
    what the live engine served at *v*.
    """

    state_version: int
    batch_size: int
    metric: str
    compute_dtype: str
    class_ids: np.ndarray
    prototypes: np.ndarray
    model_state: Dict[str, np.ndarray]
    input_dim: int
    config: "PiloteConfig"

    @property
    def nbytes(self) -> int:
        """Approximate payload size shipped over IPC."""
        arrays = [self.class_ids, self.prototypes, *self.model_state.values()]
        return int(sum(a.nbytes for a in arrays))

    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "EngineStateSnapshot") -> None:
        """Raise :class:`SnapshotMismatchError` unless a delta between the
        two snapshots can reproduce ``self`` exactly."""
        if self.compute_dtype != other.compute_dtype:
            raise SnapshotMismatchError(
                f"compute dtype moved ({other.compute_dtype!r} -> "
                f"{self.compute_dtype!r}); a delta cannot bridge dtypes"
            )
        if self.metric != other.metric:
            raise SnapshotMismatchError(
                f"distance metric moved ({other.metric!r} -> {self.metric!r})"
            )
        if self.input_dim != other.input_dim or self.config != other.config:
            raise SnapshotMismatchError(
                "model architecture moved between snapshots"
            )
        if set(self.model_state) != set(other.model_state):
            raise SnapshotMismatchError(
                "model parameter key sets differ between snapshots"
            )
        if self.prototypes.shape[1:] != other.prototypes.shape[1:]:
            raise SnapshotMismatchError(
                f"embedding dimension moved ({other.prototypes.shape[1:]} -> "
                f"{self.prototypes.shape[1:]})"
            )

    def diff(self, base: "EngineStateSnapshot") -> "EngineSnapshotDelta":
        """The delta turning ``base`` into this snapshot.

        Prototype rows are matched *by class id* (an increment may insert a
        class anywhere in the sorted row order), and only rows whose values
        moved — plus rows of brand-new classes — travel.  Model parameters
        are keyed arrays; only changed ones travel.  Incompatible snapshots
        (dtype/metric/architecture drift) raise
        :class:`~repro.exceptions.SnapshotMismatchError`, telling the caller
        to ship the full snapshot instead.
        """
        self._check_compatible(base)
        base_rows = {int(c): base.prototypes[j] for j, c in enumerate(base.class_ids)}
        changed: list = []
        for i, class_id in enumerate(self.class_ids):
            old = base_rows.get(int(class_id))
            if old is None or not np.array_equal(self.prototypes[i], old):
                changed.append(i)
        changed_rows = np.asarray(changed, dtype=np.int64)
        model_updates = {
            key: value
            for key, value in self.model_state.items()
            if not np.array_equal(value, base.model_state[key])
        }
        return EngineSnapshotDelta(
            base_version=base.state_version,
            state_version=self.state_version,
            batch_size=self.batch_size,
            metric=self.metric,
            compute_dtype=self.compute_dtype,
            class_ids=self.class_ids.copy(),
            changed_rows=changed_rows,
            prototype_rows=np.array(self.prototypes[changed_rows], copy=True),
            n_classes=int(self.prototypes.shape[0]),
            model_updates=model_updates,
        )

    def apply_delta(self, delta: "EngineSnapshotDelta") -> "EngineStateSnapshot":
        """Rebuild the successor snapshot this delta was diffed against.

        ``delta`` must have been produced by :meth:`diff` against *this*
        snapshot's ``state_version`` — anything else raises
        :class:`~repro.exceptions.StaleSnapshotError` so the caller can fall
        back to a full re-ship.
        """
        if delta.base_version != self.state_version:
            raise StaleSnapshotError(
                f"delta was diffed against state_version {delta.base_version}, "
                f"but this snapshot is at {self.state_version}"
            )
        if delta.compute_dtype != self.compute_dtype:
            raise SnapshotMismatchError(
                f"delta compute dtype {delta.compute_dtype!r} does not match "
                f"snapshot dtype {self.compute_dtype!r}"
            )
        base_rows = {int(c): self.prototypes[j] for j, c in enumerate(self.class_ids)}
        prototypes = np.empty(
            (delta.n_classes, self.prototypes.shape[1]), dtype=self.prototypes.dtype
        )
        changed = set(int(i) for i in delta.changed_rows)
        for i, class_id in enumerate(delta.class_ids):
            if i in changed:
                continue
            carried = base_rows.get(int(class_id))
            if carried is None:
                raise StaleSnapshotError(
                    f"delta carries unchanged class {int(class_id)} that this "
                    "base snapshot does not hold"
                )
            prototypes[i] = carried
        if delta.changed_rows.size:
            prototypes[delta.changed_rows] = delta.prototype_rows
        model_state = {
            key: delta.model_updates.get(key, value)
            for key, value in self.model_state.items()
        }
        return EngineStateSnapshot(
            state_version=delta.state_version,
            batch_size=delta.batch_size,
            metric=delta.metric,
            compute_dtype=delta.compute_dtype,
            class_ids=np.asarray(delta.class_ids, dtype=np.int64),
            prototypes=prototypes,
            model_state=model_state,
            input_dim=self.input_dim,
            config=self.config,
        )


@dataclass(frozen=True)
class EngineSnapshotDelta:
    """What changed between two :class:`EngineStateSnapshot`\\ s of one lane.

    Produced by :meth:`EngineStateSnapshot.diff` and consumed by
    :meth:`EngineStateSnapshot.apply_delta`; ships only the prototype rows
    whose values moved (plus new classes) and the model parameter arrays
    that changed, keyed by the base snapshot's ``state_version`` so a stale
    base is detected instead of silently mis-applied.  A prototype-only
    increment therefore re-syncs O(changed classes) bytes instead of the
    whole engine state.
    """

    base_version: int
    state_version: int
    batch_size: int
    metric: str
    compute_dtype: str
    class_ids: np.ndarray
    changed_rows: np.ndarray
    prototype_rows: np.ndarray
    n_classes: int
    model_updates: Dict[str, np.ndarray]

    @property
    def n_changed(self) -> int:
        """Prototype rows that travel (new or moved classes)."""
        return int(self.changed_rows.size)

    @property
    def nbytes(self) -> int:
        """Approximate payload size shipped over IPC."""
        arrays = [
            self.class_ids,
            self.changed_rows,
            self.prototype_rows,
            *self.model_updates.values(),
        ]
        return int(sum(a.nbytes for a in arrays))


class SnapshotEngine:
    """Batched serving rebuilt from an :class:`EngineStateSnapshot`.

    The remote counterpart of :class:`InferenceEngine`: same chunked
    embed → distance-GEMM → ``take`` pipeline, same backend kernels, but
    every piece of state comes from the snapshot instead of a live learner.
    ``predict`` runs under the snapshot's ``compute_dtype`` so the outputs
    are bit-identical to the engine the snapshot was taken from.
    """

    def __init__(self, snapshot: EngineStateSnapshot) -> None:
        from repro.core.embedding import EmbeddingNetwork  # deferred: edge <- core cycle

        self.state_version = snapshot.state_version
        self.batch_size = snapshot.batch_size
        self._metric = snapshot.metric
        self._dtype = resolve_dtype(snapshot.compute_dtype)
        self._class_ids = np.asarray(snapshot.class_ids, dtype=np.int64)
        self._prototypes = snapshot.prototypes
        with precision(self._dtype):
            model = EmbeddingNetwork(snapshot.input_dim, config=snapshot.config)
            model.load_state_dict(snapshot.model_state)
        model.eval()
        self._model = model
        self.windows_served = 0
        self.batches_served = 0

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class ids for a batch of raw feature windows (snapshot state)."""
        with precision(self._dtype):
            backend = get_backend()
            windows = backend.asarray(windows)
            if windows.ndim == 1:
                windows = windows[None, :]
            if windows.shape[0] == 0:
                return np.empty(0, dtype=np.int64)
            chunks = []
            for start in range(0, windows.shape[0], self.batch_size):
                chunk = windows[start:start + self.batch_size]
                embeddings = self._model.embed(chunk)
                chunks.append(
                    backend.pairwise_distances(
                        embeddings, self._prototypes, metric=self._metric
                    )
                )
                self.batches_served += 1
            distances = np.concatenate(chunks, axis=0)
        self.windows_served += int(windows.shape[0])
        return self._class_ids.take(np.argmin(distances, axis=1))
