"""Batched on-device serving engine.

``PILOTE.predict`` is fine for a single window but does redundant work when a
device serves a stream: every call re-derives the classifier state and walks
the whole embed→distance→argmin pipeline per request.  The
:class:`InferenceEngine` is the serving-side counterpart of the learner:

* it **serves from cached prototype state**: the class-id lookup array is
  rebuilt only when the learner's ``state_version`` changes, and the
  prototype matrix comes from the classifier's own cache (keyed on the
  prototype store's mutation counter and the dtype policy) — so incremental
  updates (``learn_new_classes``, ``build_support_set``) and even direct
  prototype mutations invalidate transparently;
* it **accepts many windows at once** and processes them in bounded batches,
  keeping peak memory flat on resource-starved devices;
* it **shares the exact kernels** of the NCM classifier (same backend
  distance GEMM, same ``take``-based id mapping), so batched predictions
  match the unbatched learner path at equal dtype.

The engine holds a reference to its learner rather than copied state: after
an on-device incremental update the very next ``predict`` call serves the
new classes with no explicit re-wiring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.backend import get_backend
from repro.exceptions import DataError, NotFittedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports edge lazily)
    from repro.core.pilote import PILOTE


class InferenceEngine:
    """Batched NCM serving over a (possibly still-learning) PILOTE learner.

    Parameters
    ----------
    learner:
        The :class:`~repro.core.pilote.PILOTE` instance to serve.  The engine
        follows the learner's state: caches are keyed by
        ``learner.state_version``.
    batch_size:
        Maximum number of windows embedded per internal step; bounds peak
        working memory during large requests.
    """

    def __init__(self, learner: "PILOTE", *, batch_size: int = 256) -> None:
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        self._learner = learner
        self.batch_size = int(batch_size)
        self._cached_version: Optional[int] = None
        self._classifier = None
        self._class_ids: Optional[np.ndarray] = None
        self.windows_served = 0
        self.batches_served = 0
        self.cache_refreshes = 0

    # ------------------------------------------------------------------ #
    @property
    def learner(self) -> "PILOTE":
        return self._learner

    def invalidate(self) -> None:
        """Force a prototype-cache rebuild on the next request."""
        self._cached_version = None

    def _refresh_if_stale(self) -> None:
        """Re-bind the learner's classifier when its state version moved.

        The prototype matrix itself is *not* copied here: the classifier
        already caches it keyed on the prototype store's mutation counter and
        the dtype policy, so direct store mutations and precision switches
        propagate to the engine without an extra invalidation channel.
        """
        learner = self._learner
        if learner.model is None:
            raise NotFittedError("the learner behind this engine has not been trained")
        learner._ensure_classifier()
        if self._cached_version == learner.state_version:
            return
        self._classifier = learner.classifier
        self._class_ids = np.asarray(self._classifier.classes_, dtype=np.int64)
        self._cached_version = learner.state_version
        self.cache_refreshes += 1

    def cache_info(self) -> Dict[str, int]:
        """Serving statistics (useful for benchmarks and monitoring)."""
        return {
            "windows_served": self.windows_served,
            "batches_served": self.batches_served,
            "cache_refreshes": self.cache_refreshes,
            "cached_classes": 0 if self._class_ids is None else int(self._class_ids.size),
        }

    # ------------------------------------------------------------------ #
    def _distances(self, windows: np.ndarray) -> np.ndarray:
        """``(n, n_classes)`` prototype distances for many raw windows."""
        self._refresh_if_stale()
        assert self._classifier is not None
        backend = get_backend()
        windows = backend.asarray(windows)
        if windows.ndim == 1:
            windows = windows[None, :]
        prototypes = self._classifier.prototype_matrix()
        metric = self._classifier.metric
        if windows.shape[0] == 0:
            return backend.zeros((0, prototypes.shape[0]))
        chunks = []
        for start in range(0, windows.shape[0], self.batch_size):
            chunk = windows[start:start + self.batch_size]
            embeddings = self._learner.embed(chunk)
            chunks.append(
                backend.pairwise_distances(embeddings, prototypes, metric=metric)
            )
            self.batches_served += 1
        self.windows_served += int(windows.shape[0])
        return np.concatenate(chunks, axis=0)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class ids for a batch of raw feature windows."""
        distances = self._distances(windows)
        assert self._class_ids is not None
        return self._class_ids.take(np.argmin(distances, axis=1))

    def predict_scores(self, windows: np.ndarray) -> np.ndarray:
        """Soft class scores (softmax over negative prototype distances)."""
        distances = self._distances(windows)
        logits = -distances
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)
