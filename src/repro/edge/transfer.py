"""Cloud → edge transfer packaging and byte-size accounting.

What crosses the network exactly once in the MAGNETO pipeline is: the
pre-trained model parameters, the exemplar support set, and the class
prototypes.  :class:`TransferPackage` carries those pieces together with their
float32-serialised sizes, which is the quantity the paper's Q2 analysis uses
("e.g., 2500 exemplars in compressed format would take 3.2 MB of space").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.pilote import PILOTE
from repro.exceptions import NotFittedError


@dataclass
class TransferPackage:
    """Everything the edge needs to start from the cloud's warm start."""

    model_state: Dict[str, np.ndarray]
    exemplar_features: Dict[int, np.ndarray]
    prototypes: Dict[int, np.ndarray]
    model_bytes: int
    support_set_bytes: int
    prototype_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.model_bytes + self.support_set_bytes + self.prototype_bytes

    def summary(self) -> Dict[str, float]:
        """Sizes in bytes and megabytes for reporting."""
        return {
            "model_bytes": self.model_bytes,
            "support_set_bytes": self.support_set_bytes,
            "prototype_bytes": self.prototype_bytes,
            "total_bytes": self.total_bytes,
            "total_megabytes": self.total_bytes / 2**20,
        }


def package_for_edge(learner: PILOTE) -> TransferPackage:
    """Build a :class:`TransferPackage` from a pre-trained PILOTE learner."""
    if not learner.is_pretrained:
        raise NotFittedError("the learner must be pre-trained before packaging")
    exemplar_features = {
        class_id: learner.exemplars.get(class_id) for class_id in learner.exemplars.classes
    }
    prototypes = {
        class_id: learner.prototypes.get(class_id) for class_id in learner.prototypes.classes
    }
    return TransferPackage(
        model_state=learner.model.state_dict(),
        exemplar_features=exemplar_features,
        prototypes=prototypes,
        model_bytes=learner.model_nbytes(),
        support_set_bytes=learner.support_set_nbytes(),
        prototype_bytes=learner.prototypes.nbytes(),
    )


def exemplar_storage_bytes(n_exemplars: int, n_features: int, dtype_bytes: int = 4) -> int:
    """Bytes needed to store ``n_exemplars`` feature vectors as float32.

    This is the formula behind the paper's support-set size statements
    (200 exemplars/class × 4 classes × 80 features × 4 B ≈ 256 KB).
    """
    if n_exemplars < 0 or n_features <= 0 or dtype_bytes <= 0:
        raise ValueError("n_exemplars, n_features and dtype_bytes must be positive")
    return int(n_exemplars) * int(n_features) * int(dtype_bytes)
