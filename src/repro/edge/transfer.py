"""Cloud → edge transfer packaging and byte-size accounting.

What crosses the network exactly once in the MAGNETO pipeline is: the
pre-trained model parameters, the exemplar support set, and the class
prototypes.  :class:`TransferPackage` carries those pieces together with their
float32-serialised sizes, which is the quantity the paper's Q2 analysis uses
("e.g., 2500 exemplars in compressed format would take 3.2 MB of space").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.exceptions import NotFittedError, SerializationError
from repro.utils.rng import RandomState


@dataclass
class TransferPackage:
    """Everything the edge needs to start from the cloud's warm start."""

    model_state: Dict[str, np.ndarray]
    exemplar_features: Dict[int, np.ndarray]
    prototypes: Dict[int, np.ndarray]
    model_bytes: int
    support_set_bytes: int
    prototype_bytes: int
    # Support-set policy of the source learner, so an instantiated device
    # learner manages its exemplars exactly as the cloud learner would.
    exemplar_strategy: str = "herding"
    exemplar_capacity: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        return self.model_bytes + self.support_set_bytes + self.prototype_bytes

    def summary(self) -> Dict[str, float]:
        """Sizes in bytes and megabytes for reporting."""
        return {
            "model_bytes": self.model_bytes,
            "support_set_bytes": self.support_set_bytes,
            "prototype_bytes": self.prototype_bytes,
            "total_bytes": self.total_bytes,
            "total_megabytes": self.total_bytes / 2**20,
        }

    def instantiate_learner(
        self,
        config: PiloteConfig,
        seed: RandomState = None,
        *,
        copy_arrays: bool = True,
        backend=None,
    ) -> PILOTE:
        """Materialise an *independent* PILOTE learner from this package.

        This is what happens on every device that receives the package: the
        backbone weights, support set and prototypes are materialised into a
        fresh learner, so the device can keep learning locally without sharing
        state with the cloud learner or with any sibling device.  The fleet
        layer (:mod:`repro.fleet`) uses this to provision many devices from a
        single cloud broadcast.

        ``copy_arrays=False`` is the copy-on-write path used by pooled fleet
        templates (:class:`~repro.fleet.coordinator.HierarchicalFleetCoordinator`):
        exemplar rows and prototypes are *shared* with the package instead of
        deep-copied, so a region full of identical devices costs one support
        set, not N.  Sharing is safe because every mutation path
        (``ExemplarStore.select``/``set_exemplars``, ``PrototypeStore.set``,
        ``_refresh_prototypes``) replaces whole entries rather than writing
        into rows; the backbone weights are always private (training updates
        them in place, and ``load_state_dict`` copies regardless).  The
        instantiated state is identical either way — ``seed`` only feeds the
        learner's *future* training streams.

        ``backend`` is forwarded to :class:`~repro.core.pilote.PILOTE`
        untouched: a name (``"sharded"``) gives the device its own pool, while
        a prebuilt :class:`~repro.backend.backend.Backend` *instance* lets a
        coordinator share one shard pool across every device it deploys (the
        learner then borrows rather than owns it).
        """
        from repro.core.embedding import EmbeddingNetwork  # local import avoids a cycle
        from repro.core.ncm import NCMClassifier

        if not self.exemplar_features:
            raise SerializationError("the transfer package carries no support set")
        input_dim = next(iter(self.exemplar_features.values())).shape[1]
        learner = PILOTE(config, seed=seed, backend=backend)
        learner.model = EmbeddingNetwork(int(input_dim), config=config)
        learner.model.load_state_dict(self.model_state)
        learner.model.eval()
        learner._old_classes = sorted(int(c) for c in self.prototypes)
        learner.exemplars.strategy = self.exemplar_strategy
        learner.exemplars.capacity = self.exemplar_capacity
        for class_id, rows in self.exemplar_features.items():
            if copy_arrays:
                learner.exemplars.set_exemplars(int(class_id), np.array(rows, copy=True))
            else:
                learner.exemplars.set_exemplars(int(class_id), rows, copy=False)
        for class_id, prototype in self.prototypes.items():
            learner.prototypes.set(
                int(class_id),
                np.array(prototype, copy=True) if copy_arrays else prototype,
            )
        learner._pretrain_dataset = None
        if len(learner.prototypes) > 0:
            learner.classifier = NCMClassifier().fit(learner.prototypes)
            learner._classifier_ready = True
            learner._state_version += 1
        return learner


def package_for_edge(learner: PILOTE) -> TransferPackage:
    """Build a :class:`TransferPackage` from a pre-trained PILOTE learner."""
    if not learner.is_pretrained:
        raise NotFittedError("the learner must be pre-trained before packaging")
    exemplar_features = {
        class_id: learner.exemplars.get(class_id) for class_id in learner.exemplars.classes
    }
    prototypes = {
        class_id: learner.prototypes.get(class_id) for class_id in learner.prototypes.classes
    }
    return TransferPackage(
        model_state=learner.model.state_dict(),
        exemplar_features=exemplar_features,
        prototypes=prototypes,
        model_bytes=learner.model_nbytes(),
        support_set_bytes=learner.support_set_nbytes(),
        prototype_bytes=learner.prototypes.nbytes(),
        exemplar_strategy=learner.exemplars.strategy,
        exemplar_capacity=learner.exemplars.capacity,
    )


def exemplar_storage_bytes(n_exemplars: int, n_features: int, dtype_bytes: int = 4) -> int:
    """Bytes needed to store ``n_exemplars`` feature vectors as float32.

    This is the formula behind the paper's support-set size statements
    (200 exemplars/class × 4 classes × 80 features × 4 B ≈ 256 KB).
    """
    if n_exemplars < 0 or n_features <= 0 or dtype_bytes <= 0:
        raise ValueError("n_exemplars, n_features and dtype_bytes must be positive")
    return int(n_exemplars) * int(n_features) * int(dtype_bytes)
