"""Additional coverage for small public APIs not exercised elsewhere:
weight initialisers, the functional loss wrappers, multi-input op error paths
and the edge-device profile catalogue."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.core.contrastive import contrastive_loss, contrastive_loss_value
from repro.core.distillation import distillation_loss, distillation_loss_value
from repro.edge.device import DEVICE_PROFILES
from repro.exceptions import ShapeError
from repro.nn.init import he_uniform, normal_init, xavier_uniform, zeros_init


class TestInitializers:
    def test_xavier_bounds(self):
        weights = xavier_uniform((50, 30), rng=0)
        limit = np.sqrt(6.0 / (50 + 30))
        assert weights.shape == (50, 30)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_he_bounds(self):
        weights = he_uniform((40, 20), rng=0)
        limit = np.sqrt(6.0 / 40)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_he_is_wider_than_xavier_for_wide_outputs(self):
        he = he_uniform((10, 1000), rng=0)
        xavier = xavier_uniform((10, 1000), rng=0)
        assert he.std() > xavier.std()

    def test_normal_and_zeros(self):
        assert abs(normal_init((2000,), std=0.05, rng=0).std() - 0.05) < 0.01
        assert np.all(zeros_init((3, 3)) == 0.0)

    def test_deterministic_given_seed(self):
        assert np.allclose(xavier_uniform((5, 5), rng=3), xavier_uniform((5, 5), rng=3))

    def test_vector_shapes_supported(self):
        assert xavier_uniform((7,), rng=0).shape == (7,)


class TestFunctionalLossWrappers:
    def _pairs(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(6, 4)), rng.normal(size=(6, 4)), rng.integers(0, 2, size=6)

    def test_contrastive_wrapper_matches_numpy_value(self):
        left, right, same = self._pairs()
        differentiable = contrastive_loss(left, right, same, margin=1.5)
        plain = contrastive_loss_value(left, right, same, margin=1.5)
        assert float(differentiable.data) == pytest.approx(plain)

    def test_contrastive_wrapper_hadsell_variant(self):
        left, right, same = self._pairs()
        differentiable = contrastive_loss(left, right, same, margin=1.0, variant="hadsell")
        plain = contrastive_loss_value(left, right, same, margin=1.0, variant="hadsell")
        assert float(differentiable.data) == pytest.approx(plain, abs=1e-6)

    def test_contrastive_wrapper_propagates_gradients(self):
        left, right, same = self._pairs()
        left_tensor = Tensor(left, requires_grad=True)
        contrastive_loss(left_tensor, Tensor(right), same).backward()
        assert left_tensor.grad is not None

    def test_distillation_wrapper_matches_numpy_value(self):
        rng = np.random.default_rng(1)
        new, old = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        assert float(distillation_loss(new, old).data) == pytest.approx(
            distillation_loss_value(new, old)
        )

    def test_distillation_zero_at_identity(self):
        embeddings = np.random.default_rng(2).normal(size=(4, 6))
        assert distillation_loss_value(embeddings, embeddings) == pytest.approx(0.0)


class TestOpsErrorPaths:
    def test_concatenate_empty_list(self):
        with pytest.raises(ShapeError):
            ops.concatenate([])

    def test_stack_empty_list(self):
        with pytest.raises(ShapeError):
            ops.stack([])

    def test_pairwise_distance_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.pairwise_squared_distance(Tensor(np.ones((2, 3))), Tensor(np.ones((3, 3))))

    def test_concatenate_accepts_raw_arrays(self):
        result = ops.concatenate([np.ones((2, 2)), np.zeros((1, 2))], axis=0)
        assert result.shape == (3, 2)


class TestDeviceProfiles:
    def test_catalogue_entries(self):
        assert {"smartphone", "wearable", "raspberry-pi"} <= set(DEVICE_PROFILES)
        for profile in DEVICE_PROFILES.values():
            assert profile.storage_bytes > 0
            assert 0 < profile.relative_compute <= 1.0

    def test_wearable_is_most_constrained(self):
        assert (
            DEVICE_PROFILES["wearable"].storage_bytes
            < DEVICE_PROFILES["smartphone"].storage_bytes
        )
        assert (
            DEVICE_PROFILES["wearable"].relative_compute
            <= DEVICE_PROFILES["raspberry-pi"].relative_compute
        )
