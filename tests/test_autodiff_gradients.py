"""Finite-difference gradient checks for every differentiable operation."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.gradcheck import check_gradients, numerical_gradient
from repro.autodiff.tensor import Tensor
from repro.exceptions import GradientError


def _tensor(shape, seed, positive=False):
    data = np.random.default_rng(seed).normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "name, function, positive",
        [
            ("add", lambda t: (t[0] + t[1]).sum(), False),
            ("sub", lambda t: (t[0] - t[1]).sum(), False),
            ("mul", lambda t: (t[0] * t[1]).sum(), False),
            ("div", lambda t: (t[0] / t[1]).sum(), True),
        ],
    )
    def test_binary_ops(self, name, function, positive):
        inputs = [_tensor((3, 4), 1, positive), _tensor((3, 4), 2, positive)]
        assert check_gradients(function, inputs)

    @pytest.mark.parametrize(
        "name, function, positive",
        [
            ("exp", lambda t: t[0].exp().sum(), False),
            ("log", lambda t: t[0].log().sum(), True),
            ("sqrt", lambda t: t[0].sqrt().sum(), True),
            ("relu", lambda t: (t[0].relu() * 3).sum(), False),
            ("sigmoid", lambda t: t[0].sigmoid().sum(), False),
            ("tanh", lambda t: t[0].tanh().sum(), False),
            ("abs", lambda t: t[0].abs().sum(), True),
            ("pow", lambda t: (t[0] ** 3).sum(), True),
            ("neg", lambda t: (-t[0]).sum(), False),
        ],
    )
    def test_unary_ops(self, name, function, positive):
        inputs = [_tensor((4, 3), 5, positive)]
        assert check_gradients(function, inputs)

    def test_clamp_min_gradient_masks_clipped_region(self):
        inputs = [Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)]
        assert check_gradients(lambda t: (t[0].clamp_min(0.0) * 2).sum(), inputs)


class TestMatmulGradients:
    def test_matrix_matrix(self):
        inputs = [_tensor((4, 3), 0), _tensor((3, 2), 1)]
        assert check_gradients(lambda t: (t[0] @ t[1]).sum(), inputs)

    def test_vector_matrix(self):
        inputs = [_tensor((3,), 0), _tensor((3, 2), 1)]
        assert check_gradients(lambda t: (t[0] @ t[1]).sum(), inputs)

    def test_matrix_vector(self):
        inputs = [_tensor((4, 3), 0), _tensor((3,), 1)]
        assert check_gradients(lambda t: (t[0] @ t[1]).sum(), inputs)

    def test_vector_vector(self):
        inputs = [_tensor((5,), 0), _tensor((5,), 1)]
        assert check_gradients(lambda t: (t[0] @ t[1]) * 1.0, inputs)


class TestReductionShapeGradients:
    def test_sum_axis(self):
        inputs = [_tensor((3, 4), 9)]
        assert check_gradients(lambda t: (t[0].sum(axis=0) ** 2).sum(), inputs)

    def test_mean_axis_keepdims(self):
        inputs = [_tensor((3, 4), 9)]
        assert check_gradients(lambda t: (t[0].mean(axis=1, keepdims=True) ** 2).sum(), inputs)

    def test_max_axis(self):
        # Use well-separated values so the max is unique (subgradient is exact).
        data = np.arange(12.0).reshape(3, 4)
        inputs = [Tensor(data, requires_grad=True)]
        assert check_gradients(lambda t: (t[0].max(axis=1) ** 2).sum(), inputs)

    def test_reshape_transpose_chain(self):
        inputs = [_tensor((2, 6), 3)]
        assert check_gradients(
            lambda t: (t[0].reshape(3, 4).transpose() ** 2).sum(), inputs
        )

    def test_getitem_fancy_index(self):
        inputs = [_tensor((6, 2), 4)]
        index = np.array([0, 0, 3, 5])
        assert check_gradients(lambda t: (t[0][index] ** 2).sum(), inputs)

    def test_getitem_rows_and_columns(self):
        inputs = [_tensor((5, 4), 8)]
        rows = np.array([0, 2, 2])
        cols = np.array([1, 1, 3])
        assert check_gradients(lambda t: (t[0][rows, cols] ** 2).sum(), inputs)

    def test_broadcast_multiply(self):
        inputs = [_tensor((4, 3), 1), _tensor((3,), 2)]
        assert check_gradients(lambda t: (t[0] * t[1]).sum(), inputs)


class TestOpsFunctionGradients:
    def test_concatenate(self):
        inputs = [_tensor((2, 3), 0), _tensor((4, 3), 1)]
        assert check_gradients(
            lambda t: (ops.concatenate([t[0], t[1]], axis=0) ** 2).sum(), inputs
        )

    def test_stack(self):
        inputs = [_tensor((3,), 0), _tensor((3,), 1)]
        assert check_gradients(lambda t: (ops.stack([t[0], t[1]]) ** 2).sum(), inputs)

    def test_softmax(self):
        inputs = [_tensor((3, 4), 2)]
        assert check_gradients(lambda t: (ops.softmax(t[0], axis=1) ** 2).sum(), inputs)

    def test_log_softmax(self):
        inputs = [_tensor((3, 4), 2)]
        assert check_gradients(lambda t: (ops.log_softmax(t[0], axis=1) ** 2).sum(), inputs)

    def test_l2_normalize(self):
        inputs = [_tensor((3, 4), 6)]
        assert check_gradients(lambda t: (ops.l2_normalize(t[0]) ** 2).sum(), inputs)

    def test_pairwise_squared_distance(self):
        inputs = [_tensor((4, 3), 1), _tensor((4, 3), 2)]
        assert check_gradients(
            lambda t: ops.pairwise_squared_distance(t[0], t[1]).sum(), inputs
        )

    def test_euclidean_distance(self):
        inputs = [_tensor((4, 3), 1), _tensor((4, 3), 2)]
        assert check_gradients(lambda t: ops.euclidean_distance(t[0], t[1]).sum(), inputs)

    def test_mean_squared_error(self):
        inputs = [_tensor((4, 3), 1)]
        target = np.zeros((4, 3))
        assert check_gradients(lambda t: ops.mean_squared_error(t[0], Tensor(target)), inputs)


class TestGradcheckUtilities:
    def test_numerical_gradient_of_quadratic(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        numeric = numerical_gradient(lambda t: (t[0] ** 2).sum(), [x], 0)
        assert np.allclose(numeric, 2 * x.data, atol=1e-4)

    def test_check_gradients_detects_mismatch(self):
        # A function whose forward uses detach() so the analytic gradient is zero
        # while the numerical gradient is not — must be flagged.
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def bad(inputs):
            return (inputs[0].detach() * inputs[0].detach()).sum() + inputs[0].sum() * 0.0

        with pytest.raises(GradientError):
            check_gradients(bad, [x])

    def test_check_gradients_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(GradientError):
            check_gradients(lambda t: t[0] * 2, [x])

    def test_check_gradients_non_raising_mode(self):
        x = Tensor(np.array([1.0]), requires_grad=True)

        def bad(inputs):
            return (inputs[0].detach() ** 2).sum() + inputs[0].sum() * 0.0

        assert check_gradients(bad, [x], raise_on_failure=False) is False
