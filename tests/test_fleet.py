"""Tests for the fleet subsystem: traffic, routing, coordination, checkpoints."""

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.data.activities import Activity
from repro.edge.device import DEVICE_PROFILES, DeviceProfile
from repro.edge.magneto import MagnetoPlatform
from repro.edge.transfer import package_for_edge
from repro.evaluation.scenarios import FleetScenarioSpec
from repro.exceptions import (
    ConfigurationError,
    DataError,
    EdgeResourceError,
    NotFittedError,
    SerializationError,
)
from repro.experiments.common import ExperimentSettings
from repro.fleet import (
    CheckpointStore,
    FleetCoordinator,
    InferenceRequest,
    Router,
    TrafficGenerator,
    WorkloadSpec,
    staggered_schedule,
)
from repro.fleet import simulation as fleet_simulation


@pytest.fixture(scope="module")
def package(pretrained_pilote):
    """The cloud broadcast shared by the fleet tests (read-only)."""
    return package_for_edge(pretrained_pilote)


@pytest.fixture()
def fleet(package, tiny_config):
    """A three-device fleet freshly deployed from the shared package."""
    coordinator = FleetCoordinator(tiny_config, seed=0)
    coordinator.provision(3)
    coordinator.deploy(package)
    return coordinator


@pytest.fixture(scope="module")
def pool(pretrained_pilote, run_scenario):
    """Feature rows used as request payloads."""
    return run_scenario.test.features


class TestTrafficGenerator:
    def test_same_seed_same_stream(self, pool):
        spec = WorkloadSpec(pattern="zipf", n_users=50, requests_per_tick=16, n_ticks=3)
        first = TrafficGenerator(pool, spec, seed=9).requests()
        second = TrafficGenerator(pool, spec, seed=9).requests()
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.user_id == b.user_id
            assert np.array_equal(a.features, b.features)

    def test_bursty_pattern_spikes(self, pool):
        spec = WorkloadSpec(
            pattern="bursty", requests_per_tick=10, n_ticks=8,
            burst_every=4, burst_multiplier=3.0,
        )
        counts = [len(batch) for batch in TrafficGenerator(pool, spec, seed=1).ticks()]
        assert counts == [10, 10, 10, 30, 10, 10, 10, 30]

    def test_zipf_skews_toward_head_users(self, pool):
        spec = WorkloadSpec(
            pattern="zipf", n_users=100, requests_per_tick=500, n_ticks=2,
            zipf_exponent=1.5,
        )
        requests = TrafficGenerator(pool, spec, seed=3).requests()
        users = np.array([r.user_id for r in requests])
        head_share = float(np.mean(users == 0))
        assert head_share > 3.0 / spec.n_users  # far above the uniform share

    def test_arrival_seconds_follow_ticks(self, pool):
        spec = WorkloadSpec(requests_per_tick=4, n_ticks=3, tick_seconds=0.5)
        ticks = list(TrafficGenerator(pool, spec, seed=0).ticks())
        assert all(r.arrival_seconds == pytest.approx(1.0) for r in ticks[2])

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(pattern="nope")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_users=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(burst_multiplier=0.5)

    def test_negative_user_rejected(self, pool):
        with pytest.raises(DataError):
            InferenceRequest(user_id=-1, features=pool[:1])

    def test_empty_pool_rejected(self):
        with pytest.raises(DataError):
            TrafficGenerator(np.empty((0, 8)), WorkloadSpec(), seed=0)

    def test_staggered_schedule(self):
        schedule = staggered_schedule(3, start_tick=2, spacing_ticks=3)
        assert schedule == {0: 2, 1: 5, 2: 8}
        with pytest.raises(ConfigurationError):
            staggered_schedule(0)


class TestRouterSharding:
    def test_same_seed_same_assignment(self, fleet):
        users = np.arange(500)
        first = Router(fleet.devices, seed=11).shard(users)
        second = Router(fleet.devices, seed=11).shard(users)
        assert np.array_equal(first, second)

    def test_different_seed_rebalances(self, fleet):
        users = np.arange(500)
        first = Router(fleet.devices, seed=11).shard(users)
        second = Router(fleet.devices, seed=12).shard(users)
        assert not np.array_equal(first, second)

    def test_assignment_is_stable_per_user_and_in_range(self, fleet):
        router = Router(fleet.devices, seed=5)
        users = np.array([7, 7, 7, 123, 123])
        assignment = router.shard(users)
        assert len(set(assignment[:3].tolist())) == 1
        assert len(set(assignment[3:].tolist())) == 1
        assert assignment.min() >= 0 and assignment.max() < 3

    def test_roughly_balanced_over_many_users(self, fleet):
        assignment = Router(fleet.devices, seed=2).shard(np.arange(3000))
        counts = np.bincount(assignment, minlength=3)
        assert counts.min() > 700  # each device gets a fair share of 1000±

    def test_needs_devices(self):
        with pytest.raises(ConfigurationError):
            Router([], seed=0)


class TestRouterDispatch:
    def test_predictions_match_direct_device_inference(self, package, tiny_config, pool):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(1)
        coordinator.deploy(package)
        device = coordinator.devices[0]
        requests = [
            InferenceRequest(user_id=i, features=pool[4 * i:4 * i + 4])
            for i in range(8)
        ]
        router = Router(coordinator.devices, seed=3)
        predictions = router.dispatch_tick(requests)
        direct = device.infer(np.concatenate([r.features for r in requests], axis=0))
        assert np.array_equal(np.concatenate(predictions), direct)

    def test_stats_accumulate(self, fleet, pool):
        spec = WorkloadSpec(n_users=40, requests_per_tick=12, n_ticks=4)
        traffic = TrafficGenerator(pool, spec, seed=1)
        router = Router(fleet.devices, seed=1)
        report = router.route(traffic.ticks())
        assert report.total_requests == 48
        assert report.total_windows == 48
        assert sum(s.requests for s in report.per_device.values()) == 48
        assert report.makespan_seconds > 0
        assert report.aggregate_throughput > 0
        served = [s for s in report.per_device.values() if s.requests]
        assert all(s.busy_seconds > 0 and s.max_queue_depth >= 1 for s in served)
        assert all(s.mean_latency_seconds >= 0 for s in served)

    def test_empty_tick_is_noop(self, fleet):
        router = Router(fleet.devices, seed=1)
        assert router.dispatch_tick([]) == []
        assert router.report().total_requests == 0


class TestFleetCoordinator:
    def test_provision_cycles_profiles(self, tiny_config):
        profiles = [DEVICE_PROFILES["smartphone"], DEVICE_PROFILES["raspberry-pi"]]
        coordinator = FleetCoordinator(tiny_config, profiles=profiles, seed=0)
        devices = coordinator.provision(3)
        assert [d.profile.name for d in devices] == [
            "smartphone", "raspberry-pi", "smartphone",
        ]
        assert [d.device_id for d in devices] == [0, 1, 2]

    def test_package_carries_exemplar_policy(self, pretrained_pilote, package, fleet):
        assert package.exemplar_strategy == pretrained_pilote.exemplars.strategy
        assert package.exemplar_capacity == pretrained_pilote.exemplars.capacity
        device_store = fleet.devices[0].learner.exemplars
        assert device_store.strategy == pretrained_pilote.exemplars.strategy
        assert device_store.capacity == pretrained_pilote.exemplars.capacity

    def test_deploy_gives_independent_learners(self, fleet):
        first, second = fleet.devices[0].learner, fleet.devices[1].learner
        assert first is not second
        first.prototypes.set(99, np.zeros(first.config.embedding_dim))
        assert 99 not in second.prototypes.classes
        # Weights are copies, not views of the package arrays.
        name, parameter = next(iter(first.model.named_parameters()))
        parameter.data[...] = 0.0
        _, other = next(iter(second.model.named_parameters()))
        assert not np.allclose(other.data, 0.0)

    def test_devices_serve_after_deploy(self, fleet, pool):
        predictions = fleet.devices[2].infer(pool[:16])
        assert predictions.shape == (16,)
        assert fleet.devices[2].edge.storage_used > 0

    def test_deploy_requires_provision(self, package, tiny_config):
        with pytest.raises(ConfigurationError):
            FleetCoordinator(tiny_config).deploy(package)

    def test_unknown_device_rejected(self, fleet, run_scenario):
        with pytest.raises(ConfigurationError):
            fleet.schedule_increment(42, 1, run_scenario.new_train)
        with pytest.raises(ConfigurationError):
            fleet.device(42)

    def test_increments_wait_for_their_tick(self, fleet, run_scenario):
        fleet.schedule_increment(0, 5, run_scenario.new_train)
        assert fleet.run_due_increments(4) == {}
        assert fleet.pending_increments() == [(5, 0)]

    def test_staggered_increment_diverges_fleet(self, package, tiny_config, run_scenario):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(2)
        coordinator.deploy(package)
        coordinator.schedule_increment(0, 1, run_scenario.new_train)
        histories = coordinator.run_due_increments(1)
        assert set(histories) == {0}
        assert int(Activity.RUN) in coordinator.device(0).learner.classes_
        assert int(Activity.RUN) not in coordinator.device(1).learner.classes_
        report = coordinator.accuracy_report(run_scenario.test)
        assert set(report.per_device) == {0, 1}
        assert report.per_device[0] > report.per_device[1]
        assert report.spread > 0
        summary = report.summary()
        assert summary["spread"] == pytest.approx(report.spread)

    def test_to_fleet_from_platform(self, pretrained_pilote, tiny_config, pool):
        platform = MagnetoPlatform(tiny_config, seed=0)
        with pytest.raises(NotFittedError):
            platform.to_fleet(2)
        platform.cloud.learner = pretrained_pilote  # skip re-pretraining
        fleet = platform.to_fleet(2)
        assert len(fleet) == 2
        assert all(d.is_deployed for d in fleet.devices)
        assert fleet.devices[0].infer(pool[:4]).shape == (4,)


class TestCheckpointStore:
    def test_roundtrip_reproduces_predictions_exactly(self, fleet, pool, tmp_path):
        device = fleet.device(1)
        store = CheckpointStore(tmp_path)
        checkpoint = store.save(device)
        restored = store.restore(checkpoint)
        assert restored.device_id == device.device_id
        assert restored.profile == device.profile
        assert restored.edge.storage_used > 0
        assert np.array_equal(device.infer(pool[:200]), restored.infer(pool[:200]))

    def test_restore_warms_the_serving_cache(self, fleet, pool, tmp_path):
        """A restored device's engine is hot before its first request."""
        device = fleet.device(1)
        store = CheckpointStore(tmp_path)
        restored = store.restore(store.save(device))
        engine = restored.edge.engine
        info = engine.cache_info()
        # The warm-up rebuild already ran (and is accounted for) at restore
        # time, so the first request pays no cache refresh.
        assert info["cache_refreshes"] == 1
        assert info["cached_classes"] > 0
        before = engine.cache_info()["cache_refreshes"]
        outputs = restored.infer(pool[:64])
        assert engine.cache_info()["cache_refreshes"] == before
        # Warming must not perturb the bit-exact round-trip.
        assert np.array_equal(device.infer(pool[:64]), outputs)

    def test_restore_by_device_id_uses_latest(self, fleet, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(fleet.device(0))
        newest = store.save(fleet.device(0))
        assert store.latest(0) == newest
        restored = store.restore(0)
        assert restored.device_id == 0
        with pytest.raises(SerializationError):
            store.restore(7)

    def test_eviction_under_storage_budget(self, fleet, tmp_path):
        probe = CheckpointStore(tmp_path / "probe").save(fleet.device(0))
        budget = int(probe.nbytes * 2.5)
        store = CheckpointStore(tmp_path / "store", budget_bytes=budget)
        first = store.save(fleet.device(0))
        second = store.save(fleet.device(1))
        third = store.save(fleet.device(2))
        kept = store.checkpoints()
        assert first not in kept and second in kept and third in kept
        assert not first.path.exists()
        assert second.path.exists() and third.path.exists()
        assert store.total_bytes <= budget
        assert store.latest(0) is None

    def test_checkpoint_larger_than_budget_rejected(self, fleet, tmp_path):
        store = CheckpointStore(tmp_path, budget_bytes=100)
        with pytest.raises(EdgeResourceError):
            store.save(fleet.device(0))
        assert store.checkpoints() == []
        assert list(store.directory.glob("*.npz")) == []

    def test_profile_budget_constructor(self, tmp_path):
        profile = DeviceProfile("tiny", storage_bytes=4096, memory_bytes=4096)
        store = CheckpointStore.for_profile(tmp_path, profile)
        assert store.budget_bytes == 4096

    def test_undeployed_device_rejected(self, tiny_config, tmp_path):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        device = coordinator.provision(1)[0]
        with pytest.raises(SerializationError):
            CheckpointStore(tmp_path).save(device)

    def test_restored_device_swaps_into_fleet(self, fleet, pool, tmp_path):
        store = CheckpointStore(tmp_path)
        checkpoint = store.save(fleet.device(2))
        replacement = store.restore(checkpoint)
        fleet.replace_device(2, replacement)
        assert fleet.device(2) is replacement
        assert fleet.device(2).infer(pool[:4]).shape == (4,)

    def test_restore_of_evicted_handle_is_typed_error(self, fleet, tmp_path):
        probe = CheckpointStore(tmp_path / "probe").save(fleet.device(0))
        store = CheckpointStore(tmp_path / "store", budget_bytes=int(probe.nbytes * 1.5))
        evicted = store.save(fleet.device(0))
        store.save(fleet.device(1))  # pushes the first checkpoint out
        assert not evicted.path.exists()
        with pytest.raises(SerializationError, match="evicted"):
            store.restore(evicted)

    def test_live_router_follows_device_replacement(self, fleet, pool, tmp_path):
        router = Router(fleet.devices, seed=1)
        replaced_id = int(router.shard([7])[0])
        crashed = fleet.devices[replaced_id]
        store = CheckpointStore(tmp_path)
        replacement = store.restore(store.save(crashed))
        fleet.replace_device(crashed.device_id, replacement)
        before = replacement.edge.inference_requests
        router.dispatch_tick([InferenceRequest(user_id=7, features=pool[:2])])
        assert replacement.edge.inference_requests == before + 1
        assert crashed.edge.inference_requests == 0

    def test_router_rejects_resized_fleet(self, fleet, pool):
        router = Router(fleet.devices, seed=1)
        fleet.provision(1)
        with pytest.raises(ConfigurationError):
            router.dispatch_tick([InferenceRequest(user_id=1, features=pool[:1])])


class TestFleetSimulation:
    def test_tiny_end_to_end_run(self):
        settings = ExperimentSettings(
            samples_per_class=40,
            n_rounds=1,
            config=PiloteConfig(
                hidden_dims=(32, 16), embedding_dim=8, batch_size=16,
                max_epochs_pretrain=3, max_epochs_increment=2, cache_size=60,
                max_pairs_per_batch=64, seed=0,
            ),
            exemplars_per_class=8,
            seed=0,
        )
        scenario = FleetScenarioSpec(
            experiment_id="fleet-test",
            description="tiny two-device simulation",
            n_devices=2,
            new_classes=(Activity.RUN,),
            traffic_pattern="uniform",
            n_users=20,
            requests_per_tick=8,
            n_ticks=4,
        )
        with pytest.raises(ConfigurationError):
            fleet_simulation.run(settings, scenario=scenario, n_devices=0)
        result = fleet_simulation.run(settings, scenario=scenario)
        assert result.n_devices == 2
        assert result.routing.total_requests == 32
        assert set(result.accuracy.per_device) == {0, 1}
        assert result.checkpoint_roundtrip_exact
        assert result.increment_ticks == {0: 1, 1: 2}
        assert all(n >= 2 for n in result.increment_samples.values())
        text = result.to_text()
        assert "Fleet simulation" in text
        assert "divergence" in text
        assert "round-trip reproduces predictions: True" in text
