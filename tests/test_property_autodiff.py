"""Property-based tests (hypothesis) for the autodiff engine.

Every analytic gradient must agree with a central finite-difference estimate
for arbitrary well-conditioned inputs, and basic algebraic identities of the
forward pass must hold exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import ops
from repro.autodiff.gradcheck import check_gradients
from repro.autodiff.tensor import Tensor

SETTINGS = dict(max_examples=25, deadline=None)

finite_floats = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False, width=64
)


def small_matrix(rows=st.integers(2, 5), cols=st.integers(2, 5)):
    return hnp.arrays(np.float64, st.tuples(rows, cols), elements=finite_floats)


class TestForwardAlgebra:
    @given(small_matrix())
    @settings(**SETTINGS)
    def test_addition_commutes(self, data):
        a, b = Tensor(data), Tensor(data[::-1].copy())
        assert np.allclose((a + b).data, (b + a).data)

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_double_negation_is_identity(self, data):
        assert np.allclose((-(-Tensor(data))).data, data)

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_sum_matches_numpy(self, data):
        assert np.isclose(Tensor(data).sum().data, data.sum())

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_relu_is_idempotent_and_nonnegative(self, data):
        once = Tensor(data).relu()
        twice = once.relu()
        assert np.all(once.data >= 0)
        assert np.allclose(once.data, twice.data)

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_reshape_preserves_contents(self, data):
        flat = Tensor(data).reshape(data.size)
        assert np.allclose(np.sort(flat.data), np.sort(data.reshape(-1)))

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_softmax_rows_sum_to_one(self, data):
        result = ops.softmax(Tensor(data), axis=1).data
        assert np.allclose(result.sum(axis=1), 1.0)
        assert np.all(result >= 0)

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_l2_normalize_unit_norm(self, data):
        normalised = ops.l2_normalize(Tensor(data + 0.1), axis=1).data
        norms = np.linalg.norm(normalised, axis=1)
        assert np.allclose(norms[np.abs(data + 0.1).sum(axis=1) > 1e-6], 1.0, atol=1e-6)


class TestGradientProperties:
    @given(small_matrix())
    @settings(**SETTINGS)
    def test_sum_gradient_is_ones(self, data):
        tensor = Tensor(data, requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, 1.0)

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_linear_combination_gradient(self, data):
        tensor = Tensor(data, requires_grad=True)
        (tensor * 3.0 - tensor).sum().backward()
        assert np.allclose(tensor.grad, 2.0)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 4), st.integers(2, 4)),
                      elements=st.floats(min_value=-2.0, max_value=2.0,
                                         allow_nan=False, allow_infinity=False)))
    @settings(**SETTINGS)
    def test_elementwise_chain_matches_finite_differences(self, data):
        tensor = Tensor(data, requires_grad=True)
        assert check_gradients(
            lambda t: ((t[0] * 0.5).tanh() + (t[0] ** 2)).sum(), [tensor],
            atol=1e-4, rtol=1e-3,
        )

    @given(st.integers(2, 5), st.integers(2, 5), st.integers(1, 4))
    @settings(**SETTINGS)
    def test_matmul_gradient_shapes(self, n, k, m):
        rng = np.random.default_rng(n * 100 + k * 10 + m)
        a = Tensor(rng.normal(size=(n, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, m)), requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        assert a.grad.shape == (n, k)
        assert b.grad.shape == (k, m)

    @given(small_matrix())
    @settings(**SETTINGS)
    def test_gradient_of_constant_branch_is_zero(self, data):
        tensor = Tensor(data, requires_grad=True)
        (tensor.detach() * 5.0).sum()  # no backward possible; just must not crash
        (tensor * 0.0).sum().backward()
        assert np.allclose(tensor.grad, 0.0)
