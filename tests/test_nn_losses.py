"""Tests for loss functions, including gradient checks and paper-equation semantics."""

import numpy as np
import pytest

from repro.autodiff.gradcheck import check_gradients
from repro.autodiff.tensor import Tensor
from repro.exceptions import ShapeError
from repro.nn.losses import (
    ContrastiveLoss,
    CrossEntropyLoss,
    DistillationLoss,
    JointIncrementalLoss,
    LogitDistillationLoss,
    MSELoss,
)


def _pair(seed, n=6, d=4):
    rng = np.random.default_rng(seed)
    left = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    right = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    labels = rng.integers(0, 2, size=n).astype(float)
    return left, right, labels


class TestContrastiveLoss:
    def test_similar_pairs_penalise_distance(self):
        loss = ContrastiveLoss(margin=1.0)
        left = Tensor([[0.0, 0.0]])
        right = Tensor([[3.0, 4.0]])
        value = float(loss(left, right, [1.0]).data)
        assert value == pytest.approx(25.0)  # squared distance

    def test_dissimilar_pairs_beyond_margin_are_free(self):
        loss = ContrastiveLoss(margin=1.0)
        left = Tensor([[0.0, 0.0]])
        right = Tensor([[3.0, 4.0]])
        assert float(loss(left, right, [0.0]).data) == pytest.approx(0.0)

    def test_dissimilar_pairs_within_margin_penalised(self):
        loss = ContrastiveLoss(margin=2.0)
        left = Tensor([[0.0, 0.0]])
        right = Tensor([[1.0, 0.0]])
        # m^2 - d^2 = 4 - 1 = 3 with the paper's squared variant.
        assert float(loss(left, right, [0.0]).data) == pytest.approx(3.0)

    def test_hadsell_variant_value(self):
        loss = ContrastiveLoss(margin=2.0, variant="hadsell")
        left = Tensor([[0.0, 0.0]])
        right = Tensor([[1.0, 0.0]])
        # (m - d)^2 = (2 - 1)^2 = 1
        assert float(loss(left, right, [0.0]).data) == pytest.approx(1.0, abs=1e-5)

    def test_sum_reduction(self):
        loss = ContrastiveLoss(margin=1.0, reduction="sum")
        left = Tensor([[1.0], [2.0]])
        right = Tensor([[0.0], [0.0]])
        assert float(loss(left, right, [1.0, 1.0]).data) == pytest.approx(5.0)

    def test_gradients(self):
        left, right, labels = _pair(0)
        loss = ContrastiveLoss(margin=1.5)
        assert check_gradients(lambda t: loss(t[0], t[1], labels), [left, right])

    def test_hadsell_gradients(self):
        left, right, labels = _pair(1)
        loss = ContrastiveLoss(margin=1.5, variant="hadsell")
        assert check_gradients(lambda t: loss(t[0], t[1], labels), [left, right])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            ContrastiveLoss()(Tensor(np.ones((2, 3))), Tensor(np.ones((3, 3))), [1, 0])

    def test_label_count_mismatch_raises(self):
        with pytest.raises(ShapeError):
            ContrastiveLoss()(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3))), [1.0])

    @pytest.mark.parametrize("bad_kwargs", [{"margin": 0.0}, {"variant": "foo"}, {"reduction": "max"}])
    def test_invalid_construction(self, bad_kwargs):
        with pytest.raises(ValueError):
            ContrastiveLoss(**bad_kwargs)


class TestDistillationLoss:
    def test_zero_when_embeddings_match(self):
        embeddings = Tensor(np.random.default_rng(0).normal(size=(4, 8)))
        assert float(DistillationLoss()(embeddings, embeddings.detach()).data) == pytest.approx(0.0)

    def test_value_is_mean_squared_distance(self):
        new = Tensor([[1.0, 0.0], [0.0, 0.0]])
        old = Tensor([[0.0, 0.0], [0.0, 2.0]])
        assert float(DistillationLoss()(new, old).data) == pytest.approx((1.0 + 4.0) / 2)

    def test_teacher_receives_no_gradient(self):
        new = Tensor(np.ones((3, 2)), requires_grad=True)
        old = Tensor(np.zeros((3, 2)), requires_grad=True)
        DistillationLoss()(new, old).backward()
        assert new.grad is not None
        assert old.grad is None

    def test_gradients(self):
        new = Tensor(np.random.default_rng(3).normal(size=(5, 4)), requires_grad=True)
        old = np.random.default_rng(4).normal(size=(5, 4))
        assert check_gradients(lambda t: DistillationLoss()(t[0], Tensor(old)), [new])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            DistillationLoss()(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 4))))


class TestJointIncrementalLoss:
    def test_alpha_zero_equals_contrastive(self):
        left, right, labels = _pair(5)
        joint = JointIncrementalLoss(alpha=0.0, margin=1.0)
        contrastive = ContrastiveLoss(margin=1.0)
        assert float(joint(left, right, labels).data) == pytest.approx(
            float(contrastive(left, right, labels).data)
        )

    def test_missing_teacher_embeddings_skips_distillation(self):
        left, right, labels = _pair(6)
        joint = JointIncrementalLoss(alpha=0.5, margin=1.0)
        contrastive = ContrastiveLoss(margin=1.0)
        expected = 0.5 * float(contrastive(left, right, labels).data)
        assert float(joint(left, right, labels).data) == pytest.approx(expected)

    def test_combination_weights(self):
        left, right, labels = _pair(7)
        rng = np.random.default_rng(8)
        student = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        teacher = Tensor(rng.normal(size=(4, 4)))
        joint = JointIncrementalLoss(alpha=0.3, margin=1.0)
        value = float(joint(left, right, labels, student, teacher).data)
        contrastive = float(ContrastiveLoss(margin=1.0)(left, right, labels).data)
        distillation = float(DistillationLoss()(student, teacher).data)
        assert value == pytest.approx(0.3 * distillation + 0.7 * contrastive)

    def test_invalid_alpha(self):
        with pytest.raises(Exception):
            JointIncrementalLoss(alpha=1.5)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        assert float(CrossEntropyLoss()(logits, [0, 1]).data) < 1e-6

    def test_uniform_prediction_is_log_n(self):
        logits = Tensor(np.zeros((3, 4)))
        assert float(CrossEntropyLoss()(logits, [0, 1, 2]).data) == pytest.approx(np.log(4))

    def test_sum_reduction(self):
        logits = Tensor(np.zeros((2, 2)))
        assert float(CrossEntropyLoss(reduction="sum")(logits, [0, 1]).data) == pytest.approx(
            2 * np.log(2)
        )

    def test_gradients(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1, 0])
        assert check_gradients(lambda t: CrossEntropyLoss()(t[0], labels), [logits])

    def test_label_out_of_range_raises(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss()(Tensor(np.zeros((2, 2))), [0, 5])

    def test_requires_2d_logits(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss()(Tensor(np.zeros(4)), [0])


class TestLogitDistillationAndMSE:
    def test_logit_distillation_minimised_at_equality(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        loss = LogitDistillationLoss(temperature=2.0)
        base = float(loss(Tensor(logits), Tensor(logits)).data)
        perturbed = float(loss(Tensor(logits + 1.5), Tensor(logits)).data)
        assert base <= perturbed

    def test_logit_distillation_gradients(self):
        new = Tensor(np.random.default_rng(1).normal(size=(4, 3)), requires_grad=True)
        old = np.random.default_rng(2).normal(size=(4, 3))
        loss = LogitDistillationLoss()
        assert check_gradients(lambda t: loss(t[0], Tensor(old)), [new])

    def test_logit_distillation_invalid_temperature(self):
        with pytest.raises(ValueError):
            LogitDistillationLoss(temperature=0.0)

    def test_mse_loss_value_and_gradient(self):
        prediction = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        target = np.array([[0.0, 0.0]])
        assert float(MSELoss()(prediction, target).data) == pytest.approx(2.5)
        assert check_gradients(lambda t: MSELoss()(t[0], target), [prediction])
