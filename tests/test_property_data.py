"""Property-based tests for the data substrate: windowing, features, splits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.dataset import HARDataset, train_val_test_split
from repro.features.statistical import channel_means, channel_variances
from repro.timeseries.jerk import jerk
from repro.timeseries.normalize import z_score
from repro.timeseries.window import segment_windows

SETTINGS = dict(max_examples=20, deadline=None)

stream_strategy = hnp.arrays(
    np.float64,
    st.tuples(st.integers(10, 80), st.integers(1, 6)),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
)


class TestWindowingProperties:
    @given(stream_strategy, st.integers(2, 10))
    @settings(**SETTINGS)
    def test_segmentation_conserves_values(self, stream, window_length):
        if stream.shape[0] < window_length:
            return
        windows = segment_windows(stream, window_length)
        usable = windows.shape[0] * window_length
        assert np.allclose(windows.reshape(usable, stream.shape[1]), stream[:usable])

    @given(stream_strategy, st.integers(2, 10))
    @settings(**SETTINGS)
    def test_window_count(self, stream, window_length):
        if stream.shape[0] < window_length:
            return
        windows = segment_windows(stream, window_length)
        assert windows.shape[0] == stream.shape[0] // window_length


class TestFeatureProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(4, 30), st.integers(1, 5)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(**SETTINGS)
    def test_mean_and_variance_bounds(self, windows):
        means = channel_means(windows)
        variances = channel_variances(windows)
        assert np.all(variances >= -1e-12)
        assert np.all(means >= windows.min(axis=1) - 1e-9)
        assert np.all(means <= windows.max(axis=1) + 1e-9)

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False), st.integers(5, 40))
    @settings(**SETTINGS)
    def test_constant_signal_has_zero_variance_and_jerk(self, value, length):
        windows = np.full((2, length, 3), value)
        assert np.allclose(channel_variances(windows), 0.0)
        assert np.allclose(jerk(windows), 0.0)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(5, 40), st.integers(1, 5)),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(**SETTINGS)
    def test_z_score_is_shift_invariant(self, values):
        shifted = values + 100.0
        assert np.allclose(z_score(values), z_score(shifted), atol=1e-6)


class TestSplitProperties:
    @given(st.integers(10, 40), st.integers(2, 4), st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_split_partitions_every_sample_exactly_once(self, per_class, n_classes, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(per_class * n_classes, 5))
        labels = np.repeat(np.arange(n_classes), per_class)
        dataset = HARDataset(features=features, labels=labels)
        splits = train_val_test_split(dataset, rng=seed)
        total = sum(splits.sizes())
        assert total == dataset.n_samples
        all_rows = np.concatenate(
            [splits.train.features, splits.validation.features, splits.test.features]
        )
        # Every original row appears exactly once (rows are unique with prob. 1).
        assert np.allclose(np.sort(all_rows, axis=0), np.sort(features, axis=0))

    @given(st.integers(10, 30), st.integers(0, 50))
    @settings(**SETTINGS)
    def test_subsample_per_class_counts(self, per_class, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(per_class * 3, 4))
        labels = np.repeat(np.arange(3), per_class)
        dataset = HARDataset(features=features, labels=labels)
        take = min(per_class, 7)
        small = dataset.subsample(take, per_class=True, rng=seed)
        assert all(count == take for count in small.class_distribution().values())
