"""Tests for classification, confusion, forgetting and embedding-quality metrics."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics.classification import (
    accuracy,
    classification_report,
    f1_score,
    per_class_accuracy,
    precision_recall_f1,
)
from repro.metrics.confusion import ConfusionMatrix, confusion_matrix
from repro.metrics.embedding_quality import (
    class_separation_report,
    intra_inter_distance_ratio,
    silhouette_score,
)
from repro.metrics.forgetting import (
    average_incremental_accuracy,
    backward_transfer,
    forgetting_measure,
    forgetting_report,
    new_class_accuracy,
    old_class_accuracy,
)


class TestClassification:
    def test_accuracy(self):
        assert accuracy([0, 1, 2], [0, 1, 1]) == pytest.approx(2 / 3)
        assert accuracy([1], [1]) == 1.0

    def test_accuracy_validation(self):
        with pytest.raises(DataError):
            accuracy([], [])
        with pytest.raises(DataError):
            accuracy([0, 1], [0])

    def test_per_class_accuracy(self):
        scores = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert scores[0] == pytest.approx(0.5)
        assert scores[1] == pytest.approx(1.0)

    def test_precision_recall_f1(self):
        report = precision_recall_f1([0, 0, 1, 1], [0, 1, 1, 1])
        assert report[1]["precision"] == pytest.approx(2 / 3)
        assert report[1]["recall"] == pytest.approx(1.0)
        assert report[0]["recall"] == pytest.approx(0.5)

    def test_f1_macro_and_micro(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(0.75)
        macro = f1_score(y_true, y_pred, average="macro")
        assert 0.0 < macro < 1.0
        with pytest.raises(DataError):
            f1_score(y_true, y_pred, average="weighted")

    def test_classification_report_contains_classes(self):
        report = classification_report([0, 1], [0, 1], label_names={0: "Walk", 1: "Run"})
        assert "Walk" in report and "Run" in report and "accuracy" in report

    def test_perfect_scores(self):
        y = [0, 1, 2, 3]
        assert accuracy(y, y) == 1.0
        assert f1_score(y, y) == pytest.approx(1.0)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_explicit_class_order(self):
        matrix = confusion_matrix([2, 4], [2, 2], classes=[2, 4])
        assert matrix[1, 0] == 1

    def test_unknown_label_raises(self):
        with pytest.raises(DataError):
            confusion_matrix([0, 5], [0, 0], classes=[0, 1])

    def test_confusion_matrix_object(self):
        cm = ConfusionMatrix.from_predictions(
            [0, 0, 1, 1, 1], [0, 1, 1, 1, 0], label_names={0: "Walk", 1: "Run"}
        )
        assert cm.accuracy() == pytest.approx(3 / 5)
        assert cm.count(0, 1) == 1
        assert cm.misclassification_rate(1, 0) == pytest.approx(1 / 3)
        text = cm.to_text()
        assert "Walk" in text and "Run" in text

    def test_normalized_rows_sum_to_one(self):
        cm = ConfusionMatrix.from_predictions([0, 0, 1], [0, 1, 1])
        assert np.allclose(cm.normalized().sum(axis=1), 1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            confusion_matrix([0, 1], [0])


class TestForgetting:
    def test_old_and_new_class_accuracy(self):
        y_true = np.array([0, 0, 1, 2, 2])
        y_pred = np.array([0, 1, 1, 2, 0])
        assert old_class_accuracy(y_true, y_pred, [0, 1]) == pytest.approx(2 / 3)
        assert new_class_accuracy(y_true, y_pred, [2]) == pytest.approx(0.5)

    def test_missing_classes_raise(self):
        with pytest.raises(DataError):
            old_class_accuracy([1, 1], [1, 1], [5])
        with pytest.raises(DataError):
            new_class_accuracy([1, 1], [1, 1], [5])

    def test_forgetting_measure_sign(self):
        assert forgetting_measure(0.9, 0.7) == pytest.approx(0.2)
        assert forgetting_measure(0.7, 0.9) == pytest.approx(-0.2)

    def test_backward_transfer(self):
        assert backward_transfer([0.9, 0.8, 0.7]) == pytest.approx(-0.15)
        with pytest.raises(DataError):
            backward_transfer([0.9])

    def test_average_incremental_accuracy(self):
        assert average_incremental_accuracy([0.8, 0.9]) == pytest.approx(0.85)
        with pytest.raises(DataError):
            average_incremental_accuracy([])

    def test_forgetting_report_keys(self):
        y_true = np.array([0, 0, 1, 1, 2, 2])
        before = np.array([0, 0, 1, 1, 0, 0])
        after = np.array([0, 1, 1, 1, 2, 2])
        report = forgetting_report(y_true, before, after, old_classes=[0, 1], new_classes=[2])
        assert report["old_accuracy_before"] == pytest.approx(1.0)
        assert report["old_accuracy_after"] == pytest.approx(0.75)
        assert report["forgetting"] == pytest.approx(0.25)
        assert report["new_accuracy_after"] == pytest.approx(1.0)


class TestEmbeddingQuality:
    def _separated(self, gap):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, size=(40, 4))
        b = rng.normal(gap, 1.0, size=(40, 4))
        embeddings = np.concatenate([a, b])
        labels = np.array([0] * 40 + [1] * 40)
        return embeddings, labels

    def test_silhouette_increases_with_separation(self):
        close = silhouette_score(*self._separated(1.0))
        far = silhouette_score(*self._separated(10.0))
        assert far > close
        assert far > 0.7

    def test_silhouette_subsampling_path(self):
        embeddings, labels = self._separated(5.0)
        assert silhouette_score(embeddings, labels, max_samples=20) > 0.0

    def test_intra_inter_ratio_decreases_with_separation(self):
        close = intra_inter_distance_ratio(*self._separated(1.0))
        far = intra_inter_distance_ratio(*self._separated(10.0))
        assert far < close

    def test_report_keys(self):
        report = class_separation_report(*self._separated(3.0))
        assert set(report) == {"silhouette", "intra_inter_ratio"}

    def test_requires_two_classes(self):
        embeddings = np.random.default_rng(0).normal(size=(10, 3))
        with pytest.raises(DataError):
            silhouette_score(embeddings, np.zeros(10))
        with pytest.raises(DataError):
            intra_inter_distance_ratio(embeddings, np.zeros(10))

    def test_shape_validation(self):
        with pytest.raises(DataError):
            silhouette_score(np.zeros((5, 2)), np.zeros(3))
