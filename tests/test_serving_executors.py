"""Tests for the executor seam: serial/thread/process batch execution.

The contract under test (ISSUE 5): FIFO/EDF scheduling, routing policies and
deadline accounting compose unchanged with every executor; on a seeded
workload the three executors produce identical predictions and identical
``RoutingReport`` outcome counters; a dying worker process surfaces as a
typed :class:`~repro.exceptions.ServingError` with no dropped or
double-answered futures; and engine state travels to worker processes as
picklable snapshots keyed by ``PILOTE.state_version``.
"""

import pickle

import numpy as np
import pytest

from repro.cli import build_parser
from repro.edge.inference import EngineStateSnapshot, SnapshotEngine
from repro.edge.transfer import package_for_edge
from repro.exceptions import (
    ConfigurationError,
    ExecutorError,
    ServingError,
    WorkerDiedError,
)
from repro.fleet import FleetCoordinator, TrafficGenerator, WorkloadSpec
from repro.fleet.router import DeviceStats, RoutingReport
from repro.serving import (
    EXECUTORS,
    EventLoopScheduler,
    PredictRequest,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    serve,
)


@pytest.fixture(scope="module")
def package(pretrained_pilote):
    """The cloud broadcast shared by the executor tests (read-only)."""
    return package_for_edge(pretrained_pilote)


@pytest.fixture()
def fleet(package, tiny_config):
    """A three-device fleet freshly deployed from the shared package."""
    coordinator = FleetCoordinator(tiny_config, seed=0)
    coordinator.provision(3)
    coordinator.deploy(package)
    return coordinator


@pytest.fixture(scope="module")
def pool(run_scenario):
    """Feature rows used as request payloads."""
    return run_scenario.test.features


def _zipf_ticks(pool, seed=11, n_ticks=4):
    spec = WorkloadSpec(
        pattern="zipf", n_users=40, requests_per_tick=24, n_ticks=n_ticks,
        tick_seconds=1e-4,
    )
    return list(TrafficGenerator(pool, spec, seed=seed).ticks())


def _run_through(fleet, ticks, **serve_options):
    """Serve a tick stream; returns (concatenated predictions, report)."""
    with serve(fleet, routing="hash", seed=7, **serve_options) as client:
        futures = []
        for requests in ticks:
            futures.extend(client.submit_many(requests))
            client.drain()
        predictions = np.concatenate([f.result().class_ids for f in futures])
        return predictions, client.report()


class TestExecutorRegistry:
    def test_default_is_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)

    def test_names_resolve(self):
        assert set(EXECUTORS) == {"serial", "thread", "process"}
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process", workers=2), ProcessExecutor)

    def test_instances_pass_through(self):
        executor = ThreadExecutor(workers=2)
        assert make_executor(executor) is executor

    def test_unknown_name_is_typed_error(self):
        with pytest.raises(ConfigurationError):
            make_executor("asyncio")

    def test_workers_with_instance_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(ThreadExecutor(), workers=2)

    def test_non_positive_workers_rejected(self, fleet):
        with pytest.raises(ConfigurationError):
            serve(fleet, executor="thread", workers=0).drain()

    def test_workers_with_serial_rejected(self, fleet):
        # A pool size on the inline executor (including the default) is a
        # caller mistake, never silently ignored.
        with pytest.raises(ConfigurationError):
            serve(fleet, workers=4)
        with pytest.raises(ConfigurationError):
            SerialExecutor(workers=4)

    def test_fleet_sim_rejects_deadlines_on_wall_clock_executors(self):
        from repro.fleet import simulation as fleet_simulation

        # Simulated-clock deadlines cannot be judged on the measured wall
        # clock; the validation fires before any training starts.
        with pytest.raises(ConfigurationError, match="serial"):
            fleet_simulation.run(deadline_ms=50.0, executor="process")


class TestExecutorEquivalence:
    def test_identical_predictions_and_counters_on_zipf(self, fleet, pool):
        """Serial, thread and process executors answer bit-identically."""
        ticks = _zipf_ticks(pool)
        outcomes = {}
        for name in ("serial", "thread", "process"):
            workers = None if name == "serial" else 2
            predictions, report = _run_through(
                fleet, ticks, executor=name, workers=workers
            )
            outcomes[name] = (predictions, report)
        base_predictions, base_report = outcomes["serial"]
        assert base_report.clock == "simulated"
        for name in ("thread", "process"):
            predictions, report = outcomes[name]
            assert np.array_equal(predictions, base_predictions), name
            assert report.clock == "wall", name
            # Outcome counters are timing-independent and must match exactly.
            assert report.total_requests == base_report.total_requests
            assert report.total_windows == base_report.total_windows
            assert report.total_expired == base_report.total_expired
            assert report.total_rejected == base_report.total_rejected
            assert report.total_failed == base_report.total_failed
            assert report.resolved_requests == base_report.resolved_requests
            for device_id, stats in base_report.per_device.items():
                other = report.per_device[device_id]
                assert other.requests == stats.requests, name
                assert other.windows == stats.windows, name
                assert other.batches == stats.batches, name

    def test_single_lane_layers_equivalent(self, pretrained_pilote, pool):
        """serve(learner) answers identically through every executor."""
        base = serve(pretrained_pilote).predict(pool[:48])
        for name in ("thread", "process"):
            with serve(pretrained_pilote, executor=name) as client:
                assert np.array_equal(client.predict(pool[:48]), base), name

    def test_edf_and_deadlines_compose_with_every_executor(self, fleet, pool):
        """Queue order and deadline accounting work unchanged off-process."""
        spec = WorkloadSpec(
            pattern="zipf", n_users=40, requests_per_tick=32, n_ticks=3,
            tick_seconds=1e-5, deadline_seconds=5e-3,
            deadline_multipliers=(0.5, 1.0, 4.0), deadline_fraction=0.75,
        )
        for name in EXECUTORS:
            ticks = list(TrafficGenerator(pool, spec, seed=3).ticks())
            submitted = sum(len(t) for t in ticks)
            with serve(
                fleet, routing="hash", scheduling="edf", seed=7,
                executor=name, workers=None if name == "serial" else 2,
            ) as client:
                futures = []
                for requests in ticks:
                    futures.extend(client.submit_many(requests))
                client.drain()
                assert all(future.done() for future in futures), name
                report = client.report()
            # The invariant web: every submitted request resolved exactly one
            # way, and served totals match the per-device rows.
            assert report.total_requests == sum(
                s.requests for s in report.per_device.values()
            ), name
            assert (
                report.total_requests + report.total_expired + report.total_failed
                == submitted
            ), name
            assert report.resolved_requests == submitted, name

    def test_process_resyncs_snapshot_after_increment(self, fleet, pool, run_scenario):
        """A state_version bump mid-stream re-ships the lane snapshot."""
        with serve(fleet, routing="hash", seed=7, executor="process", workers=2) as client:
            before = client.predict(pool[:32], user_id=5)
            # On-device increment: the lane's learner moves past the shipped
            # snapshot version, so the next round must re-sync.
            for device in fleet.devices:
                device.learn_new_activity(run_scenario.new_train)
            after = client.predict(pool[:32], user_id=5)
        serial = serve(fleet, routing="hash", seed=7)
        expected = serial.predict(pool[:32], user_id=5)
        assert np.array_equal(after, expected)
        # The increment learned a new class, so predictions genuinely moved
        # (guards against the worker serving the stale snapshot).
        new_classes = set(run_scenario.new_classes)
        assert set(np.unique(expected)) & new_classes or not np.array_equal(
            before, after
        )


class TestWorkerDeath:
    def _requests(self, pool, count):
        return [
            PredictRequest(user_id=user, features=pool[user:user + 2])
            for user in range(count)
        ]

    def test_dead_worker_fails_typed_and_respawns(self, fleet, pool):
        scheduler = EventLoopScheduler(
            fleet.devices, "hash", seed=7, executor="process", workers=3
        )
        with scheduler:
            requests = self._requests(pool, 6)
            # Pin two requests per lane so every worker owns traffic.
            assignment = np.array([0, 1, 2, 0, 1, 2])
            futures = scheduler.submit_assigned(requests, assignment)
            executor = scheduler.executor
            executor._ensure_workers()
            executor._workers[0].task_queue.put(("crash",))
            scheduler.drain()

            assert all(future.done() for future in futures)
            failed = [f for f in futures if f.exception() is not None]
            served = [f for f in futures if f.exception() is None]
            # Lane 0's batch died with the worker; the other lanes answered.
            assert len(failed) == 2 and len(served) == 4
            for future in failed:
                error = future.exception()
                assert isinstance(error, WorkerDiedError)
                assert isinstance(error, ServingError)
                with pytest.raises(WorkerDiedError):
                    future.result()
            report = scheduler.report()
            assert report.total_failed == 2
            assert report.total_requests == 4
            assert report.total_requests == sum(
                s.requests for s in report.per_device.values()
            )
            assert scheduler.pending_requests == 0

            # The pool respawned the dead worker (fresh queue, re-synced
            # snapshot): the same lanes serve again.
            retry = scheduler.submit_assigned(self._requests(pool, 3), np.arange(3))
            scheduler.drain()
            assert all(f.exception() is None for f in retry)

    def test_lane_without_engine_is_typed_error(self, pool):
        class Opaque:
            device_id = 0
            profile = type("P", (), {"name": "opaque", "relative_compute": 1.0})()

            def infer(self, windows):  # pragma: no cover - never reached
                return np.zeros(windows.shape[0], dtype=np.int64)

        scheduler = EventLoopScheduler(
            [Opaque()], executor="process", workers=1
        )
        with scheduler:
            future = scheduler.submit(PredictRequest(user_id=0, features=pool[:2]))
            scheduler.drain()
            assert isinstance(future.exception(), ExecutorError)
            # Even an all-failed run reports the executor's clock: rows are
            # labelled at creation, not on first successful completion.
            assert scheduler.report().clock == "wall"

    def test_unfitted_engine_fails_future_not_drain(self, tiny_config, pool):
        """Snapshot failures travel through the future; drain() survives
        and no popped batch is stranded unresolvable."""
        from repro.core.pilote import PILOTE
        from repro.edge.inference import InferenceEngine
        from repro.exceptions import NotFittedError

        engine = InferenceEngine(PILOTE(tiny_config))  # never trained
        with serve(engine, executor="process", workers=1) as client:
            future = client.submit(PredictRequest(user_id=0, features=pool[:2]))
            client.drain()
            assert future.done()
            assert isinstance(future.exception(), NotFittedError)
            assert client.pending_requests == 0
            assert client.report().total_failed == 1


def _cheap_serving_learner(rng_seed: int):
    """A pre-trained-looking learner built without gradient training."""
    from repro.core.config import PiloteConfig
    from repro.core.embedding import EmbeddingNetwork
    from repro.core.pilote import PILOTE

    config = PiloteConfig(hidden_dims=(32, 16), embedding_dim=8, cache_size=100, seed=0)
    rng = np.random.default_rng(rng_seed)
    learner = PILOTE(config, seed=0)
    learner.model = EmbeddingNetwork(20, config=config, rng=rng_seed)
    learner._old_classes = list(range(3))
    for class_id in range(3):
        learner.exemplars.set_exemplars(class_id, rng.normal(size=(30, 20)))
    learner._refresh_prototypes()
    return learner


class TestSnapshotStaleness:
    def test_replaced_learner_reships_despite_equal_version(self):
        """Staleness is keyed on identity, not just the version number."""
        from repro.serving.client import LocalServingDevice

        learner_a = _cheap_serving_learner(0)
        learner_b = _cheap_serving_learner(1)
        assert learner_a.state_version == learner_b.state_version
        engine_a = learner_a.inference_engine()
        engine_b = learner_b.inference_engine()
        pool = np.random.default_rng(9).normal(size=(32, 20))
        expected_a = engine_a.predict(pool)
        expected_b = engine_b.predict(pool)
        assert not np.array_equal(expected_a, expected_b)

        device = LocalServingDevice(engine_a.predict, engine=engine_a)
        scheduler = EventLoopScheduler([device], executor="process", workers=1)
        with scheduler:
            first = scheduler.submit(PredictRequest(user_id=0, features=pool))
            scheduler.drain()
            assert np.array_equal(first.result().class_ids, expected_a)
            # Swap in a different learner at the *same* state_version; the
            # next round must re-ship rather than serve the stale snapshot.
            scheduler.replace_device(
                0, LocalServingDevice(engine_b.predict, engine=engine_b)
            )
            second = scheduler.submit(PredictRequest(user_id=0, features=pool))
            scheduler.drain()
            assert np.array_equal(second.result().class_ids, expected_b)


class TestWallClockAccounting:
    def test_makespan_includes_worker_queueing(self):
        """Lanes sharing one worker must not report fully-parallel time."""
        from repro.serving.client import LocalServingDevice

        learner = _cheap_serving_learner(0)
        engine = learner.inference_engine()
        pool = np.random.default_rng(9).normal(size=(128, 20))
        devices = [
            LocalServingDevice(engine.predict, engine=engine, device_id=i)
            for i in range(3)
        ]
        scheduler = EventLoopScheduler(devices, executor="process", workers=1)
        with scheduler:
            requests = [
                PredictRequest(user_id=u, features=pool) for u in range(6)
            ]
            scheduler.submit_assigned(requests, np.array([0, 1, 2, 0, 1, 2]))
            scheduler.drain()
            report = scheduler.report()
        # One worker serializes all three lanes, so the measured makespan is
        # at least the total in-worker compute — a per-lane-parallel clock
        # would report roughly a third of it.
        assert report.clock == "wall"
        assert report.makespan_seconds >= report.engine_wall_seconds * 0.95

    def test_reentrant_drain_keeps_wall_clock_monotone(self):
        """A done-callback re-entering drain() mid-round must not observe —
        or cause — a lane clock that later moves backwards: the concurrent
        drain books the whole round before firing any completion."""
        from repro.serving.client import LocalServingDevice

        learner = _cheap_serving_learner(0)
        engine = learner.inference_engine()
        pool = np.random.default_rng(9).normal(size=(48, 20))
        devices = [
            LocalServingDevice(engine.predict, engine=engine, device_id=i)
            for i in range(2)
        ]
        scheduler = EventLoopScheduler(devices, executor="thread", workers=2)
        with scheduler:
            chained = []
            snapshots = []

            def chain(_future):
                # Submit a follow-up onto the *other* lane and re-enter the
                # drain while the outer round's results are being applied;
                # snapshot the lane clocks the inner drain leaves behind so
                # the outer drain can be caught rewinding them.
                chained.extend(
                    scheduler.submit_assigned(
                        [PredictRequest(user_id=9, features=pool)], np.array([1])
                    )
                )
                scheduler.drain()
                snapshots.append(scheduler._available_at.copy())

            first = scheduler.submit_assigned(
                [PredictRequest(user_id=0, features=pool)], np.array([0])
            )[0]
            second = scheduler.submit_assigned(
                [PredictRequest(user_id=1, features=pool)], np.array([1])
            )[0]
            first.add_done_callback(chain)
            scheduler.drain()

            assert first.done() and second.done() and chained[0].done()
            assert chained[0].exception() is None
            assert scheduler.pending_requests == 0
            # The lane clocks never rewound past what the callback observed.
            assert (scheduler._available_at >= snapshots[0] - 1e-12).all()
            assert scheduler.report().total_requests == 3


class TestEngineSnapshot:
    def test_snapshot_round_trips_bit_exact(self, pretrained_pilote, pool):
        engine = pretrained_pilote.inference_engine()
        snapshot = engine.state_snapshot()
        assert isinstance(snapshot, EngineStateSnapshot)
        assert snapshot.state_version == pretrained_pilote.state_version
        assert snapshot.nbytes > 0
        replica = SnapshotEngine(pickle.loads(pickle.dumps(snapshot)))
        assert replica.state_version == snapshot.state_version
        assert np.array_equal(replica.predict(pool[:64]), engine.predict(pool[:64]))

    def test_snapshot_pins_compute_dtype(self, pretrained_pilote):
        engine = pretrained_pilote.inference_engine()
        snapshot32 = engine.state_snapshot(compute_dtype="float32")
        snapshot64 = engine.state_snapshot(compute_dtype="float64")
        assert snapshot32.prototypes.dtype == np.float32
        assert snapshot64.prototypes.dtype == np.float64

    def test_snapshot_holds_no_live_references(self, pretrained_pilote):
        snapshot = pretrained_pilote.inference_engine().state_snapshot()
        assert all(
            isinstance(value, np.ndarray) for value in snapshot.model_state.values()
        )
        assert isinstance(snapshot.class_ids, np.ndarray)

    def test_warm_builds_caches_once(self, pilote_copy):
        from repro.edge.inference import InferenceEngine

        engine = InferenceEngine(pilote_copy)
        assert engine.cache_info()["cache_refreshes"] == 0
        engine.warm()
        info = engine.cache_info()
        assert info["cache_refreshes"] == 1
        assert info["cached_classes"] > 0
        engine.warm()  # idempotent
        assert engine.cache_info()["cache_refreshes"] == 1


class TestSloResolvedRequests:
    """Satellite: slo_attainment must stay consistent past the latency cap."""

    def test_trimmed_history_no_longer_overweights_expiries(self):
        # 100 requests served (all within target), but the per-device window
        # only kept 10 samples; 100 more expired.  The consistent ratio is
        # 100 / 200 = 0.5 — the old window-mixing formula said 10/110.
        stats = DeviceStats(device_id=0, profile="x", requests=100)
        stats.latencies = [1e-3] * 10
        report = RoutingReport(
            per_device={0: stats},
            total_requests=100,
            total_expired=100,
            resolved_requests=200,
        )
        assert report.slo_attainment(1.0) == pytest.approx(0.5)

    def test_untrimmed_matches_exact_accounting(self):
        stats = DeviceStats(device_id=0, profile="x", requests=4)
        stats.latencies = [1e-3, 1e-3, 2.0, 2.0]
        report = RoutingReport(
            per_device={0: stats},
            total_requests=4,
            total_expired=1,
            total_failed=1,
            resolved_requests=6,
        )
        # 2 of 4 sampled within target, scaled to 4 served, over 6 resolved.
        assert report.slo_attainment(1.0) == pytest.approx(2 / 6)

    def test_legacy_report_without_history_stays_vacuous(self):
        stats = DeviceStats(device_id=0, profile="x", requests=8)
        report = RoutingReport(per_device={0: stats}, total_requests=8)
        assert report.slo_attainment(1.0) == 1.0


class TestCliFlags:
    def test_executor_flags_parse(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["fleet-sim", "--executor", "process", "--workers", "2"]
        )
        assert arguments.executor == "process"
        assert arguments.workers == 2

    def test_unknown_executor_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fleet-sim", "--executor", "gpu"])

    def test_incoherent_combinations_fail_at_the_parser(self, capsys):
        from repro.cli import main

        # --workers without a concurrent executor, and --deadline-ms with
        # one, must die before any dataset/fleet setup runs.
        with pytest.raises(SystemExit):
            main(["fleet-sim", "--workers", "2"])
        assert "--executor thread" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["fleet-sim", "--deadline-ms", "50", "--executor", "process"])
        assert "serial executor" in capsys.readouterr().err
