"""Tests for pair sampling, prototypes and the NCM classifier."""

import numpy as np
import pytest

from repro.core.ncm import NCMClassifier
from repro.core.pairs import PairSampler, count_contrastive_pairs
from repro.core.prototypes import PrototypeStore, compute_class_prototypes
from repro.exceptions import DataError, NotFittedError


class TestPairSampler:
    def test_all_strategy_generates_all_pairs(self):
        labels = np.array([0, 0, 1, 1])
        pairs = PairSampler(strategy="all", max_pairs=100, rng=0).sample(labels)
        assert pairs.n_pairs == 6
        assert pairs.n_positive == 2  # (0,1) and (2,3)

    def test_pair_labels_are_correct(self):
        labels = np.array([0, 1])
        pairs = PairSampler(strategy="all", rng=0).sample(labels)
        assert pairs.same_class.tolist() == [0.0]

    def test_max_pairs_cap(self):
        labels = np.zeros(30, dtype=int)
        pairs = PairSampler(strategy="all", max_pairs=10, rng=0).sample(labels)
        assert pairs.n_pairs == 10

    def test_new_centred_only_involves_new_classes(self):
        labels = np.array([0, 0, 0, 5, 5])
        pairs = PairSampler(strategy="new_centred", max_pairs=100, rng=0).sample(
            labels, new_classes={5}
        )
        involves_new = (labels[pairs.left] == 5) | (labels[pairs.right] == 5)
        assert involves_new.all()
        assert pairs.n_pairs == 7  # 3*2 cross pairs + 1 new-new pair

    def test_new_centred_requires_new_classes(self):
        with pytest.raises(DataError):
            PairSampler(strategy="new_centred").sample(np.array([0, 1]))

    def test_new_centred_falls_back_when_no_new_samples(self):
        labels = np.array([0, 0, 1])
        pairs = PairSampler(strategy="new_centred", max_pairs=100, rng=0).sample(
            labels, new_classes={9}
        )
        assert pairs.n_pairs == 3  # falls back to all pairs

    def test_balanced_strategy_mixes_positive_and_negative(self):
        labels = np.array([0] * 10 + [1] * 10)
        pairs = PairSampler(strategy="balanced", max_pairs=40, rng=0).sample(labels)
        assert pairs.n_positive > 0 and pairs.n_negative > 0
        assert abs(pairs.n_positive - pairs.n_negative) <= 2

    def test_balanced_single_class_batch(self):
        labels = np.zeros(6, dtype=int)
        pairs = PairSampler(strategy="balanced", max_pairs=10, rng=0).sample(labels)
        assert pairs.n_pairs > 0
        assert pairs.n_negative == 0

    def test_requires_two_samples(self):
        with pytest.raises(DataError):
            PairSampler().sample(np.array([0]))

    def test_invalid_construction(self):
        with pytest.raises(DataError):
            PairSampler(strategy="everything")
        with pytest.raises(DataError):
            PairSampler(max_pairs=0)

    def test_count_contrastive_pairs_reduction(self):
        counts = {0: 10, 1: 10, 2: 5}
        assert count_contrastive_pairs(counts) == 25 * 24 // 2
        reduced = count_contrastive_pairs(counts, new_classes={2})
        assert reduced == 25 * 24 // 2 - 20 * 19 // 2
        assert reduced < count_contrastive_pairs(counts)


class TestPrototypes:
    def test_compute_class_prototypes(self):
        embeddings = np.array([[0.0, 0.0], [2.0, 2.0], [4.0, 6.0]])
        labels = np.array([1, 1, 3])
        prototypes = compute_class_prototypes(embeddings, labels)
        assert np.allclose(prototypes[1], [1.0, 1.0])
        assert np.allclose(prototypes[3], [4.0, 6.0])

    def test_compute_validates_shapes(self):
        with pytest.raises(DataError):
            compute_class_prototypes(np.zeros(5), np.zeros(5))
        with pytest.raises(DataError):
            compute_class_prototypes(np.zeros((3, 2)), np.zeros(2))

    def test_store_set_get_contains(self):
        store = PrototypeStore()
        store.set(2, [1.0, 2.0])
        assert 2 in store
        assert np.allclose(store.get(2), [1.0, 2.0])
        assert store.classes == [2]
        with pytest.raises(KeyError):
            store.get(5)

    def test_store_dimension_consistency(self):
        store = PrototypeStore()
        store.set(0, [1.0, 2.0])
        with pytest.raises(DataError):
            store.set(1, [1.0, 2.0, 3.0])

    def test_store_update_from_and_matrix(self):
        store = PrototypeStore()
        embeddings = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 4.0]])
        store.update_from(embeddings, np.array([0, 0, 1]))
        matrix = store.as_matrix()
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix[0], [1.0, 0.0])

    def test_store_as_matrix_empty_raises(self):
        with pytest.raises(NotFittedError):
            PrototypeStore().as_matrix()

    def test_store_remove_and_nbytes(self):
        store = PrototypeStore()
        store.set(0, np.zeros(8))
        store.set(1, np.zeros(8))
        assert store.nbytes() == 2 * 8 * 4
        store.remove(0)
        assert store.classes == [1]


class TestNCMClassifier:
    def _fitted(self):
        return NCMClassifier().fit({0: np.array([0.0, 0.0]), 1: np.array([10.0, 0.0])})

    def test_predicts_nearest_prototype(self):
        classifier = self._fitted()
        predictions = classifier.predict(np.array([[1.0, 0.0], [9.0, 1.0]]))
        assert predictions.tolist() == [0, 1]

    def test_predict_single_vector(self):
        assert self._fitted().predict(np.array([8.0, 0.0])).tolist() == [1]

    def test_distances_shape(self):
        assert self._fitted().distances(np.zeros((3, 2))).shape == (3, 2)

    def test_vectorized_predict_maps_noncontiguous_class_ids(self):
        """Regression: predict uses a cached class-id ``take``, not a Python loop.

        Class ids are deliberately non-contiguous and unsorted-by-insertion so
        an argmin-index-as-class-id bug would be caught immediately.
        """
        rng = np.random.default_rng(0)
        prototypes = {17: np.array([0.0, 0.0]), 3: np.array([10.0, 0.0]),
                      42: np.array([0.0, 10.0])}
        classifier = NCMClassifier().fit(prototypes)
        queries = rng.normal(scale=0.5, size=(64, 2)) + np.array([10.0, 0.0])
        predictions = classifier.predict(queries)
        # Reference: per-row loop over the distance matrix (the seed path).
        distances = classifier.distances(queries)
        expected = np.asarray(
            [classifier.classes_[int(index)] for index in np.argmin(distances, axis=1)],
            dtype=np.int64,
        )
        assert np.array_equal(predictions, expected)
        assert set(predictions.tolist()) <= {3, 17, 42}

    def test_prototype_matrix_cache_refreshes_on_store_mutation(self):
        store = PrototypeStore()
        store.set(0, np.array([0.0, 0.0]))
        store.set(1, np.array([4.0, 0.0]))
        classifier = NCMClassifier().fit(store)
        assert classifier.predict(np.array([[3.5, 0.0]])).tolist() == [1]
        store.set(1, np.array([100.0, 0.0]))  # move prototype far away
        assert classifier.predict(np.array([[3.5, 0.0]])).tolist() == [0]

    def test_prototype_matrix_cache_follows_dtype_policy(self):
        """Regression: a precision switch must rebuild the cached matrix."""
        from repro.backend import precision

        classifier = self._fitted()
        assert classifier.prototype_matrix().dtype == np.float64
        with precision("edge"):
            assert classifier.prototype_matrix().dtype == np.float32
            assert classifier.distances(np.zeros((2, 2))).dtype == np.float32
        assert classifier.prototype_matrix().dtype == np.float64

    def test_scores_are_probabilities(self):
        scores = self._fitted().predict_scores(np.array([[1.0, 0.0]]))
        assert scores.shape == (1, 2)
        assert scores.sum() == pytest.approx(1.0)
        assert scores[0, 0] > scores[0, 1]

    def test_cosine_metric(self):
        classifier = NCMClassifier(metric="cosine").fit(
            {0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])}
        )
        assert classifier.predict(np.array([[2.0, 0.1]])).tolist() == [0]

    def test_fit_from_prototype_store(self):
        store = PrototypeStore()
        store.set(7, [0.0, 0.0])
        store.set(9, [5.0, 5.0])
        classifier = NCMClassifier().fit(store)
        assert classifier.classes_ == [7, 9]
        assert classifier.predict(np.array([[4.0, 4.0]])).tolist() == [9]

    def test_not_fitted_errors(self):
        with pytest.raises(NotFittedError):
            NCMClassifier().predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            NCMClassifier().classes_

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DataError):
            self._fitted().predict(np.zeros((2, 3)))

    def test_invalid_inputs(self):
        with pytest.raises(DataError):
            NCMClassifier(metric="manhattan")
        with pytest.raises(DataError):
            NCMClassifier().fit({})
        with pytest.raises(DataError):
            NCMClassifier().fit([1, 2, 3])
