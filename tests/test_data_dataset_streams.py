"""Tests for HARDataset, splitting, incremental scenarios and imbalance utilities."""

import numpy as np
import pytest

from repro.data.activities import Activity
from repro.data.dataset import HARDataset, train_val_test_split
from repro.data.imbalance import class_counts, imbalance_ratio, make_imbalanced, subsample_class
from repro.data.streams import build_incremental_scenario
from repro.exceptions import DataError


def _dataset(n_per_class=30, n_classes=4, n_features=6, seed=0):
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for class_id in range(n_classes):
        features.append(rng.normal(class_id, 1.0, size=(n_per_class, n_features)))
        labels.append(np.full(n_per_class, class_id))
    return HARDataset(
        features=np.concatenate(features),
        labels=np.concatenate(labels),
        label_names={i: f"activity{i}" for i in range(n_classes)},
    )


class TestHARDataset:
    def test_basic_properties(self):
        dataset = _dataset()
        assert dataset.n_samples == 120
        assert dataset.n_features == 6
        assert len(dataset) == 120
        assert dataset.classes.tolist() == [0, 1, 2, 3]
        assert dataset.class_name(1) == "activity1"
        assert dataset.class_name(99) == "class_99"

    def test_select_and_exclude_classes(self):
        dataset = _dataset()
        selected = dataset.select_classes([0, 2])
        assert set(selected.classes.tolist()) == {0, 2}
        excluded = dataset.exclude_classes([0])
        assert 0 not in excluded.classes

    def test_select_missing_class_raises(self):
        with pytest.raises(DataError):
            _dataset().select_classes([99])

    def test_class_subset(self):
        dataset = _dataset()
        assert dataset.class_subset(2).shape == (30, 6)
        with pytest.raises(DataError):
            dataset.class_subset(42)

    def test_subsample_per_class(self):
        dataset = _dataset()
        small = dataset.subsample(5, per_class=True, rng=0)
        assert all(count == 5 for count in small.class_distribution().values())

    def test_subsample_global(self):
        dataset = _dataset()
        assert dataset.subsample(17, rng=0).n_samples == 17

    def test_subsample_more_than_available(self):
        dataset = _dataset(n_per_class=3)
        assert dataset.subsample(100, per_class=True, rng=0).n_samples == 12

    def test_shuffled_preserves_pairs(self):
        dataset = _dataset()
        shuffled = dataset.shuffled(rng=0)
        # Class 3 rows were generated around mean 3; check labels still match rows.
        mask = shuffled.labels == 3
        assert abs(shuffled.features[mask].mean() - 3.0) < 0.5

    def test_merge(self):
        combined = _dataset(n_per_class=5).merge(_dataset(n_per_class=7, seed=1))
        assert combined.n_samples == 4 * 5 + 4 * 7

    def test_merge_feature_mismatch_raises(self):
        with pytest.raises(DataError):
            _dataset(n_features=4).merge(_dataset(n_features=6))

    def test_validation_of_inputs(self):
        with pytest.raises(DataError):
            HARDataset(features=np.ones((3, 2)), labels=np.array([0, 1]))
        with pytest.raises(DataError):
            HARDataset(features=np.array([[np.nan, 1.0]]), labels=np.array([0]))


class TestSplits:
    def test_paper_split_proportions(self):
        dataset = _dataset(n_per_class=50)
        splits = train_val_test_split(dataset, test_fraction=0.3, validation_fraction=0.2, rng=0)
        train_n, val_n, test_n = splits.sizes()
        assert train_n + val_n + test_n == dataset.n_samples
        assert abs(test_n - 0.3 * dataset.n_samples) <= 4
        assert abs(val_n - 0.2 * 0.7 * dataset.n_samples) <= 4

    def test_stratified_split_covers_all_classes(self):
        dataset = _dataset(n_per_class=20)
        splits = train_val_test_split(dataset, rng=1)
        for part in (splits.train, splits.validation, splits.test):
            assert set(part.classes.tolist()) == {0, 1, 2, 3}

    def test_partitions_are_disjoint(self):
        dataset = _dataset(n_per_class=20)
        splits = train_val_test_split(dataset, rng=2)
        # Rows are unique random vectors, so row-wise comparison detects overlap.
        train_rows = {tuple(row) for row in splits.train.features}
        test_rows = {tuple(row) for row in splits.test.features}
        assert not train_rows & test_rows

    def test_split_is_reproducible(self):
        dataset = _dataset()
        first = train_val_test_split(dataset, rng=5)
        second = train_val_test_split(dataset, rng=5)
        assert np.allclose(first.test.features, second.test.features)

    def test_invalid_fractions(self):
        dataset = _dataset()
        with pytest.raises(DataError):
            train_val_test_split(dataset, test_fraction=0.0)
        with pytest.raises(DataError):
            train_val_test_split(dataset, validation_fraction=1.0)

    def test_validation_never_empty(self):
        dataset = _dataset(n_per_class=3)
        splits = train_val_test_split(dataset, validation_fraction=0.0, rng=0)
        assert splits.validation.n_samples >= 1


class TestIncrementalScenario:
    def test_scenario_structure(self):
        dataset = _dataset(n_per_class=40)
        scenario = build_incremental_scenario(dataset, [3], rng=0)
        assert scenario.old_classes == [0, 1, 2]
        assert scenario.new_classes == [3]
        assert scenario.all_classes == [0, 1, 2, 3]
        assert set(scenario.old_train.classes.tolist()) == {0, 1, 2}
        assert set(scenario.new_train.classes.tolist()) == {3}
        assert set(scenario.test.classes.tolist()) == {0, 1, 2, 3}

    def test_new_class_sample_cap(self):
        dataset = _dataset(n_per_class=40)
        scenario = build_incremental_scenario(dataset, [3], new_class_samples=5, rng=0)
        assert scenario.new_train.n_samples == 5

    def test_describe(self):
        dataset = _dataset(n_per_class=10)
        description = build_incremental_scenario(dataset, [1], rng=0).describe()
        assert description["new_classes"] == [1]
        assert description["test_size"] > 0

    def test_errors(self):
        dataset = _dataset()
        with pytest.raises(DataError):
            build_incremental_scenario(dataset, [])
        with pytest.raises(DataError):
            build_incremental_scenario(dataset, [99])
        with pytest.raises(DataError):
            build_incremental_scenario(dataset, [0, 1, 2, 3])

    def test_multiple_new_classes(self):
        dataset = _dataset(n_per_class=30)
        scenario = build_incremental_scenario(dataset, [2, 3], rng=1)
        assert scenario.new_classes == [2, 3]
        assert scenario.old_classes == [0, 1]

    def test_real_activity_scenario(self, har_dataset):
        scenario = build_incremental_scenario(har_dataset, [Activity.RUN], rng=0)
        assert int(Activity.RUN) in scenario.new_classes
        assert int(Activity.RUN) not in scenario.old_classes


class TestImbalance:
    def test_class_counts(self):
        assert class_counts(np.array([0, 0, 1, 2, 2, 2])) == {0: 2, 1: 1, 2: 3}

    def test_imbalance_ratio(self):
        assert imbalance_ratio(np.array([0, 0, 0, 1])) == pytest.approx(3.0)
        with pytest.raises(DataError):
            imbalance_ratio(np.array([]))

    def test_subsample_class(self):
        dataset = _dataset(n_per_class=30)
        reduced = subsample_class(dataset, 2, 5, rng=0)
        counts = reduced.class_distribution()
        assert counts[2] == 5
        assert counts[0] == 30

    def test_subsample_class_errors(self):
        dataset = _dataset()
        with pytest.raises(DataError):
            subsample_class(dataset, 99, 5)
        with pytest.raises(DataError):
            subsample_class(dataset, 0, 0)

    def test_make_imbalanced(self):
        dataset = _dataset(n_per_class=40)
        skewed = make_imbalanced(dataset, {0: 0.25, 1: 1.0}, rng=0)
        counts = skewed.class_distribution()
        assert counts[0] == 10
        assert counts[1] == 40
        assert imbalance_ratio(skewed.labels) == pytest.approx(4.0)

    def test_make_imbalanced_invalid_proportion(self):
        with pytest.raises(DataError):
            make_imbalanced(_dataset(), {0: 0.0})
