"""Tests for the Tensor class: forward semantics, graph bookkeeping, backward."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, is_grad_enabled, no_grad
from repro.exceptions import GradientError, ShapeError


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4
        assert not tensor.requires_grad

    def test_construction_from_tensor_copies_data_reference(self):
        source = Tensor([1.0, 2.0])
        wrapped = Tensor(source)
        assert np.allclose(wrapped.data, source.data)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_on_multi_element_tensor_raises_shape_error(self):
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError, match="exactly one element"):
            Tensor([1.0, 2.0]).item()
        with pytest.raises(ShapeError, match=r"shape \(2, 2\)"):
            Tensor(np.zeros((2, 2))).item()

    def test_item_on_size_one_matrix(self):
        assert Tensor(np.full((1, 1), 7.0)).item() == pytest.approx(7.0)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        detached = (a * 2).detach()
        assert not detached.requires_grad

    def test_len_matches_first_dimension(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestArithmeticForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        assert np.allclose((a + b).data, np.ones((2, 3)) + np.arange(3.0))

    def test_scalar_radd(self):
        assert np.allclose((1.0 + Tensor([1.0, 2.0])).data, [2.0, 3.0])

    def test_subtraction_and_rsub(self):
        a = Tensor([3.0])
        assert np.allclose((a - 1.0).data, [2.0])
        assert np.allclose((5.0 - a).data, [2.0])

    def test_multiplication_and_division(self):
        a = Tensor([2.0, 4.0])
        assert np.allclose((a * 3.0).data, [6.0, 12.0])
        assert np.allclose((a / 2.0).data, [1.0, 2.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])

    def test_power(self):
        assert np.allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_power_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.allclose((a @ b).data, b.data)

    def test_matmul_rejects_scalars(self):
        with pytest.raises(ShapeError):
            Tensor(1.0) @ Tensor(2.0)

    def test_negation(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        tensor = Tensor(np.arange(6.0).reshape(2, 3))
        assert tensor.sum().data == pytest.approx(15.0)
        assert tensor.sum(axis=0).shape == (3,)
        assert tensor.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_matches_numpy(self):
        data = np.arange(12.0).reshape(3, 4)
        assert np.allclose(Tensor(data).mean(axis=0).data, data.mean(axis=0))

    def test_max_global_and_axis(self):
        data = np.array([[1.0, 5.0], [3.0, 2.0]])
        assert Tensor(data).max().data == pytest.approx(5.0)
        assert np.allclose(Tensor(data).max(axis=0).data, [3.0, 5.0])

    def test_reshape_and_transpose(self):
        tensor = Tensor(np.arange(6.0))
        assert tensor.reshape(2, 3).shape == (2, 3)
        assert tensor.reshape((3, 2)).shape == (3, 2)
        assert Tensor(np.zeros((2, 4))).T.shape == (4, 2)

    def test_getitem_slice_and_fancy(self):
        tensor = Tensor(np.arange(10.0))
        assert np.allclose(tensor[2:5].data, [2.0, 3.0, 4.0])
        assert np.allclose(tensor[np.array([1, 1, 3])].data, [1.0, 1.0, 3.0])

    def test_clamp_min(self):
        assert np.allclose(Tensor([-1.0, 2.0]).clamp_min(0.0).data, [0.0, 2.0])

    def test_abs(self):
        assert np.allclose(Tensor([-1.5, 2.0]).abs().data, [1.5, 2.0])


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_seed(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (tensor * 2).backward()

    def test_simple_chain_gradient(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + 2.0 * x + 1.0
        y.backward()
        assert x.grad == pytest.approx(2 * 3.0 + 2.0)

    def test_gradient_accumulates_over_multiple_uses(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x + x * x  # x used twice in two branches
        y.backward()
        assert x.grad == pytest.approx(8.0)

    def test_broadcast_gradient_is_reduced(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        data = Tensor(np.ones((4, 3)))
        loss = (data + bias).sum()
        loss.backward()
        assert bias.grad.shape == (3,)
        assert np.allclose(bias.grad, 4.0)

    def test_zero_grad_resets(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_grad_matches_shape_of_data(self):
        w = Tensor(np.random.default_rng(0).normal(size=(3, 2)), requires_grad=True)
        x = Tensor(np.ones((5, 3)))
        ((x @ w) ** 2).sum().backward()
        assert w.grad.shape == w.data.shape


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor(1.0, requires_grad=True)
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad
        assert not x.requires_grad  # requires_grad was forced off at creation

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_comparison_returns_numpy(self):
        result = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(result, np.ndarray)
        assert result.tolist() == [False, True]
