"""Tests for the paper's two baselines (Pre-trained, Re-trained) and learner cloning."""

import numpy as np
import pytest

from repro.baselines.base import clone_pretrained
from repro.baselines.pretrained import PretrainedBaseline
from repro.baselines.retrained import RetrainedBaseline
from repro.data.activities import Activity
from repro.exceptions import NotFittedError


class TestClonePretrained:
    def test_clone_is_deep(self, pretrained_pilote):
        clone = clone_pretrained(pretrained_pilote)
        for parameter in clone.model.parameters():
            parameter.data += 1.0
        original = pretrained_pilote.model.parameters()[0].data
        cloned = clone.model.parameters()[0].data
        assert not np.allclose(original, cloned)

    def test_clone_preserves_prototypes(self, pretrained_pilote):
        clone = clone_pretrained(pretrained_pilote)
        assert clone.prototypes.classes == pretrained_pilote.prototypes.classes


class TestPretrainedBaseline:
    def test_increment_does_not_modify_embedding(self, pretrained_pilote, run_scenario):
        baseline = PretrainedBaseline(pretrained=pretrained_pilote)
        weights_before = [p.data.copy() for p in baseline.learner.model.parameters()]
        baseline.learn_increment(run_scenario.new_train)
        weights_after = [p.data for p in baseline.learner.model.parameters()]
        for before, after in zip(weights_before, weights_after):
            assert np.allclose(before, after)

    def test_increment_adds_new_class_prototype(self, pretrained_pilote, run_scenario):
        baseline = PretrainedBaseline(pretrained=pretrained_pilote)
        baseline.learn_increment(run_scenario.new_train)
        assert int(Activity.RUN) in baseline.known_classes
        predictions = baseline.predict(run_scenario.test.features)
        assert int(Activity.RUN) in set(predictions.tolist())

    def test_accuracy_reasonable_but_limited(self, pretrained_pilote, run_scenario):
        baseline = PretrainedBaseline(pretrained=pretrained_pilote)
        baseline.learn_increment(run_scenario.new_train)
        accuracy = baseline.evaluate(run_scenario.test)
        assert 0.3 < accuracy <= 1.0

    def test_original_learner_untouched(self, pretrained_pilote, run_scenario):
        n_classes_before = len(pretrained_pilote.classes_)
        baseline = PretrainedBaseline(pretrained=pretrained_pilote)
        baseline.learn_increment(run_scenario.new_train)
        assert len(pretrained_pilote.classes_) == n_classes_before

    def test_fit_base_then_increment(self, run_scenario, tiny_config):
        baseline = PretrainedBaseline(tiny_config, seed=0)
        baseline.fit_base(run_scenario.old_train, run_scenario.old_validation)
        baseline.learn_increment(run_scenario.new_train)
        assert baseline.evaluate(run_scenario.test) > 0.3

    def test_increment_before_fit_raises(self, tiny_config, run_scenario):
        with pytest.raises(NotFittedError):
            PretrainedBaseline(tiny_config).learn_increment(run_scenario.new_train)


class TestRetrainedBaseline:
    def test_increment_updates_embedding(self, pretrained_pilote, run_scenario):
        baseline = RetrainedBaseline(pretrained=pretrained_pilote)
        weights_before = [p.data.copy() for p in baseline.learner.model.parameters()]
        baseline.learn_increment(run_scenario.new_train, run_scenario.new_validation)
        changed = any(
            not np.allclose(before, after.data)
            for before, after in zip(weights_before, baseline.learner.model.parameters())
        )
        assert changed

    def test_alpha_forced_to_zero(self, pretrained_pilote, run_scenario):
        baseline = RetrainedBaseline(pretrained=pretrained_pilote)
        baseline.learn_increment(run_scenario.new_train, run_scenario.new_validation)
        assert baseline.learner.config.alpha == 0.0

    def test_learns_the_new_class(self, pretrained_pilote, run_scenario):
        baseline = RetrainedBaseline(pretrained=pretrained_pilote)
        baseline.learn_increment(run_scenario.new_train, run_scenario.new_validation)
        new_test = run_scenario.test.select_classes([int(Activity.RUN)])
        assert baseline.evaluate(new_test) > 0.5

    def test_increment_before_fit_raises(self, tiny_config, run_scenario):
        with pytest.raises(NotFittedError):
            RetrainedBaseline(tiny_config).learn_increment(run_scenario.new_train)

    def test_known_classes_after_increment(self, pretrained_pilote, run_scenario):
        baseline = RetrainedBaseline(pretrained=pretrained_pilote)
        baseline.learn_increment(run_scenario.new_train, run_scenario.new_validation)
        assert sorted(baseline.known_classes) == sorted(
            run_scenario.old_classes + run_scenario.new_classes
        )
