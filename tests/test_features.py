"""Tests for the statistical feature extractor and registry."""

import numpy as np
import pytest

from repro.data.sensors import default_sensor_suite
from repro.exceptions import ConfigurationError, DataError
from repro.features.extractor import StatisticalFeatureExtractor
from repro.features.registry import FeatureRegistry
from repro.features.statistical import (
    channel_energy,
    channel_means,
    channel_min_max_range,
    channel_variances,
    triaxial_jerk_statistics,
    triaxial_magnitude_statistics,
)


@pytest.fixture()
def windows():
    return np.random.default_rng(0).normal(size=(5, 40, 6))


class TestStatisticalPrimitives:
    def test_channel_means_matches_numpy(self, windows):
        assert np.allclose(channel_means(windows), windows.mean(axis=1))

    def test_channel_variances_matches_numpy(self, windows):
        assert np.allclose(channel_variances(windows), windows.var(axis=1))

    def test_channel_range_and_energy(self, windows):
        assert channel_min_max_range(windows).shape == (5, 6)
        assert np.all(channel_energy(windows) >= 0)

    def test_triaxial_magnitude_statistics_shape(self, windows):
        block = triaxial_magnitude_statistics(windows, [(0, 1, 2), (3, 4, 5)])
        assert block.shape == (5, 4)
        assert np.all(block[:, 0] >= 0)  # magnitudes are non-negative

    def test_triaxial_jerk_statistics_shape(self, windows):
        block = triaxial_jerk_statistics(windows, [(0, 1, 2)], sampling_rate_hz=40.0)
        assert block.shape == (5, 4)

    def test_no_groups_gives_empty_block(self, windows):
        assert triaxial_jerk_statistics(windows, []).shape == (5, 0)

    def test_still_signal_has_near_zero_jerk(self):
        still = np.ones((2, 30, 3)) * 5.0
        block = triaxial_jerk_statistics(still, [(0, 1, 2)])
        assert np.allclose(block, 0.0)

    def test_wrong_shape_raises(self):
        with pytest.raises(DataError):
            channel_means(np.zeros((5, 6)))


class TestFeatureRegistry:
    def test_register_and_compute(self, windows):
        registry = FeatureRegistry()
        registry.register("max", lambda w: w.max(axis=1), "per-channel maximum")
        registry.register("count", lambda w: np.full(w.shape[0], w.shape[1]))
        features = registry.compute(windows)
        assert features.shape == (5, 7)
        assert registry.names() == ["max", "count"]

    def test_duplicate_name_rejected(self):
        registry = FeatureRegistry()
        registry.register("a", lambda w: w.mean(axis=1))
        with pytest.raises(ConfigurationError):
            registry.register("a", lambda w: w.mean(axis=1))

    def test_remove(self):
        registry = FeatureRegistry()
        registry.register("a", lambda w: w.mean(axis=1))
        registry.remove("a")
        assert "a" not in registry
        with pytest.raises(KeyError):
            registry.remove("a")

    def test_empty_registry_compute_raises(self, windows):
        with pytest.raises(ConfigurationError):
            FeatureRegistry().compute(windows)

    def test_wrong_row_count_rejected(self, windows):
        registry = FeatureRegistry()
        registry.register("broken", lambda w: np.zeros((3, 1)))
        with pytest.raises(ConfigurationError):
            registry.compute(windows)


class TestStatisticalFeatureExtractor:
    def test_default_suite_gives_80_features(self):
        suite = default_sensor_suite()
        extractor = StatisticalFeatureExtractor(
            suite.triaxial_groups, sampling_rate_hz=suite.sampling_rate_hz
        )
        windows = np.random.default_rng(0).normal(size=(3, suite.window_length, suite.n_channels))
        features = extractor.transform(windows)
        assert features.shape == (3, 80)
        assert extractor.n_features(suite.n_channels) == 80
        assert len(extractor.feature_names(suite.n_channels)) == 80

    def test_single_window_2d_input(self):
        suite = default_sensor_suite()
        extractor = StatisticalFeatureExtractor(suite.triaxial_groups)
        window = np.random.default_rng(0).normal(size=(suite.window_length, suite.n_channels))
        assert extractor.transform(window).shape == (1, 80)

    def test_extra_registry_appends_columns(self):
        suite = default_sensor_suite()
        registry = FeatureRegistry()
        registry.register("range", lambda w: w.max(axis=1) - w.min(axis=1))
        extractor = StatisticalFeatureExtractor(suite.triaxial_groups, extra_registry=registry)
        windows = np.random.default_rng(0).normal(size=(2, 120, 22))
        assert extractor.transform(windows).shape == (2, 80 + 22)

    def test_group_out_of_range_raises(self):
        extractor = StatisticalFeatureExtractor([(0, 1, 99)])
        with pytest.raises(DataError):
            extractor.transform(np.zeros((1, 10, 5)))

    def test_invalid_group_size_raises(self):
        with pytest.raises(DataError):
            StatisticalFeatureExtractor([(0, 1)])

    def test_invalid_sampling_rate(self):
        with pytest.raises(DataError):
            StatisticalFeatureExtractor([(0, 1, 2)], sampling_rate_hz=0.0)

    def test_features_are_deterministic(self):
        suite = default_sensor_suite()
        extractor = StatisticalFeatureExtractor(suite.triaxial_groups)
        windows = np.random.default_rng(1).normal(size=(4, 120, 22))
        assert np.allclose(extractor.transform(windows), extractor.transform(windows))

    def test_callable_alias(self):
        suite = default_sensor_suite()
        extractor = StatisticalFeatureExtractor(suite.triaxial_groups)
        windows = np.random.default_rng(1).normal(size=(2, 120, 22))
        assert np.allclose(extractor(windows), extractor.transform(windows))
