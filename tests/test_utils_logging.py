"""Tests for repro.utils.logging."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


class TestGetLogger:
    def test_returns_namespaced_logger(self):
        assert get_logger("core.pilote").name == "repro.core.pilote"

    def test_root_library_logger(self):
        assert get_logger().name == "repro"

    def test_already_namespaced_not_doubled(self):
        assert get_logger("repro.data").name == "repro.data"


class TestEnableConsoleLogging:
    def test_adds_stream_handler_once(self):
        logger = enable_console_logging(logging.DEBUG)
        count_before = len(logger.handlers)
        enable_console_logging(logging.DEBUG)
        assert len(logger.handlers) == count_before
        assert logger.level == logging.DEBUG
