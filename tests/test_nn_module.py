"""Tests for the Module/Parameter abstraction."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.exceptions import SerializationError
from repro.nn.layers import BatchNorm1d, Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 3, rng=0)
        self.second = Linear(3, 2, rng=1)
        self.register_buffer("scale", np.array([2.0]))

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestParameterRegistration:
    def test_parameters_collected_recursively(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "first.weight" in names and "second.bias" in names
        assert len(net.parameters()) == 4

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_parameter_nbytes_float32(self):
        net = TinyNet()
        assert net.parameter_nbytes() == net.num_parameters() * 4

    def test_buffers_collected(self):
        net = TinyNet()
        buffers = dict(net.named_buffers())
        assert "scale" in buffers

    def test_modules_iteration(self):
        net = TinyNet()
        assert len(list(net.modules())) == 3  # net + two Linear layers


class TestTrainEvalAndGrads:
    def test_train_eval_propagates(self):
        net = Sequential(Linear(4, 4, rng=0), BatchNorm1d(4), ReLU())
        net.eval()
        assert all(not module.training for module in net.modules())
        net.train()
        assert all(module.training for module in net.modules())

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_round_trip(self):
        net = TinyNet()
        other = TinyNet()
        other.load_state_dict(net.state_dict())
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["param.first.weight"][:] = 0.0
        assert not np.allclose(net.first.weight.data, 0.0)

    def test_missing_parameter_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["param.first.weight"]
        with pytest.raises(SerializationError):
            TinyNet().load_state_dict(state)

    def test_unexpected_parameter_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["param.bogus"] = np.zeros(3)
        with pytest.raises(SerializationError):
            TinyNet().load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["param.first.weight"] = np.zeros((2, 2))
        with pytest.raises(SerializationError):
            TinyNet().load_state_dict(state)

    def test_buffers_round_trip(self):
        net = Sequential(Linear(3, 3, rng=0), BatchNorm1d(3))
        net(Tensor(np.random.default_rng(0).normal(size=(8, 3)))).sum()
        state = net.state_dict()
        other = Sequential(Linear(3, 3, rng=1), BatchNorm1d(3))
        other.load_state_dict(state)
        assert np.allclose(other[1].running_mean, net[1].running_mean)

    def test_copy_weights_from(self):
        net, other = TinyNet(), TinyNet()
        other.copy_weights_from(net)
        assert np.allclose(other.second.weight.data, net.second.weight.data)

    def test_clone_is_independent(self):
        net = TinyNet()
        duplicate = net.clone()
        duplicate.first.weight.data[:] = 0.0
        assert not np.allclose(net.first.weight.data, 0.0)
