"""Tests for the sequential multi-step incremental-learning extension experiment."""

import pytest

from repro.data.activities import Activity
from repro.experiments import multi_increment
from repro.experiments.common import ExperimentSettings


@pytest.fixture(scope="module")
def result():
    settings = ExperimentSettings.quick(seed=5)
    return multi_increment.run(
        settings,
        base_classes=(Activity.STILL, Activity.DRIVE),
        increment_order=(Activity.WALK, Activity.RUN),
    )


class TestMultiIncrement:
    def test_step_structure(self, result):
        # One record for the base model plus one per increment.
        assert len(result.step_classes) == 3
        assert result.step_classes[0] == [int(Activity.STILL), int(Activity.DRIVE)]
        assert int(Activity.RUN) in result.step_classes[-1]
        assert set(result.step_accuracy) == {"pilote", "re-trained"}

    def test_accuracies_are_valid(self, result):
        for series in result.step_accuracy.values():
            assert len(series) == 3
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_base_step_is_strong(self, result):
        # On two well-separated base classes both methods start out accurate.
        assert result.step_accuracy["pilote"][0] > 0.8
        assert result.step_accuracy["re-trained"][0] > 0.8

    def test_summary_metrics(self, result):
        for method in ("pilote", "re-trained"):
            assert 0.0 <= result.average_incremental_accuracy(method) <= 1.0
            # Backward transfer is a (usually negative) accuracy difference.
            assert -1.0 <= result.backward_transfer(method) <= 1.0

    def test_pilote_limits_forgetting_of_base_classes(self, result):
        assert (
            result.old_class_accuracy["pilote"][-1]
            >= result.old_class_accuracy["re-trained"][-1] - 0.10
        )

    def test_to_text(self, result):
        text = result.to_text()
        assert "Sequential class-incremental" in text
        assert "backward transfer" in text
