"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        arguments = parser.parse_args(["table2", "--scale", "quick", "--seed", "3"])
        assert arguments.experiment == "table2"
        assert arguments.scale == "quick"
        assert arguments.seed == 3

    def test_default_scale_is_quick(self):
        assert build_parser().parse_args(["figure4"]).scale == "quick"

    def test_fleet_sim_accepts_devices_flag(self):
        arguments = build_parser().parse_args(["fleet-sim", "--devices", "4"])
        assert arguments.experiment == "fleet-sim"
        assert arguments.devices == 4
        assert build_parser().parse_args(["fleet-sim"]).devices is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--scale", "huge"])


class TestMain:
    def test_edge_experiment_runs_and_prints(self, capsys):
        exit_code = main(["edge", "--scale", "quick", "--seed", "11"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Support-set storage" in captured.out

    def test_figure5_runs(self, capsys):
        exit_code = main(["figure5", "--scale", "quick", "--seed", "11"])
        assert exit_code == 0
        assert "silhouette" in capsys.readouterr().out
