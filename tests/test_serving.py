"""Tests for the unified serving API: protocol, client, scheduler, rollout."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.edge.device import EdgeDevice
from repro.edge.magneto import MagnetoPlatform
from repro.edge.transfer import package_for_edge
from repro.exceptions import (
    ConfigurationError,
    DataError,
    DeadlineExceededError,
    InvalidRequestError,
    NotFittedError,
    RoutingError,
    ServingError,
)
from repro.fleet import (
    FleetCoordinator,
    InferenceRequest,
    LoadBalancer,
    Router,
    TrafficGenerator,
    WorkloadSpec,
)
from repro.serving import (
    ABRollout,
    AllAtOnceRollout,
    EventLoopScheduler,
    HashRouting,
    PendingResult,
    PredictRequest,
    PredictResponse,
    StagedRollout,
    make_routing_policy,
    serve,
)


@pytest.fixture(scope="module")
def package(pretrained_pilote):
    """The cloud broadcast shared by the serving tests (read-only)."""
    return package_for_edge(pretrained_pilote)


@pytest.fixture()
def fleet(package, tiny_config):
    """A three-device fleet freshly deployed from the shared package."""
    coordinator = FleetCoordinator(tiny_config, seed=0)
    coordinator.provision(3)
    coordinator.deploy(package)
    return coordinator


@pytest.fixture(scope="module")
def pool(run_scenario):
    """Feature rows used as request payloads."""
    return run_scenario.test.features


class TestProtocol:
    def test_request_validation(self, pool):
        with pytest.raises(InvalidRequestError):
            PredictRequest(user_id=-1, features=pool[:1])
        with pytest.raises(InvalidRequestError):
            PredictRequest(user_id=0, features=np.empty((0, 8)))
        with pytest.raises(InvalidRequestError):
            PredictRequest(user_id=0, features=pool[:1],
                           arrival_seconds=1.0, deadline_seconds=0.5)

    def test_invalid_request_error_is_typed(self):
        assert issubclass(InvalidRequestError, ServingError)
        assert issubclass(InvalidRequestError, DataError)

    def test_single_window_promoted_to_batch(self, pool):
        request = PredictRequest(user_id=0, features=pool[0])
        assert request.features.ndim == 2
        assert request.n_windows == 1

    def test_response_carries_request_facts(self, pool):
        request = PredictRequest(
            user_id=4, features=pool[:3], arrival_seconds=1.0,
            metadata={"k": "v"}, request_id=99,
        )
        response = PredictResponse(request, np.array([1, 2, 2]), 7, 1.5)
        assert response.user_id == 4
        assert response.request_id == 99
        assert response.metadata == {"k": "v"}
        assert response.latency_seconds == pytest.approx(0.5)
        assert not response.deadline_missed
        assert [p.class_id for p in response.predictions] == [1, 2, 2]
        assert [p.window for p in response.predictions] == [0, 1, 2]

    def test_pending_result_lifecycle(self, pretrained_pilote, pool):
        client = serve(pretrained_pilote)
        future = client.submit(PredictRequest(user_id=0, features=pool[:2]))
        assert isinstance(future, PendingResult)
        assert not future.done()
        seen = []
        future.add_done_callback(lambda f: seen.append(("queued", f)))
        client.drain()
        assert future.done() and seen == [("queued", future)]
        future.add_done_callback(lambda f: seen.append(("late", f)))
        assert seen[-1] == ("late", future)  # fired immediately once done
        assert future.exception() is None
        assert future.result().n_windows == 2

    def test_batch_double_completion_guarded(self):
        from repro.serving.scheduler import _Batch

        batch = _Batch(0.0, scheduler=None)
        batch.finish(np.array([1]), 0, 0.25)
        with pytest.raises(ServingError, match="twice"):
            batch.finish(np.array([1]), 0, 0.25)


class TestServeFacade:
    def test_learner_client_matches_direct_predict(self, pretrained_pilote, pool):
        client = serve(pretrained_pilote)
        predictions = client.predict(pool[:16])
        assert np.array_equal(predictions, pretrained_pilote.predict(pool[:16]))
        assert client.label == "learner" and client.n_devices == 1

    def test_engine_and_edge_device_clients(self, pretrained_pilote, pool):
        engine = pretrained_pilote.inference_engine()
        assert np.array_equal(
            serve(engine).predict(pool[:8]), engine.predict(pool[:8])
        )
        device = EdgeDevice()
        device.attach_inference(engine)
        client = serve(device)
        before = device.inference_requests
        assert client.predict(pool[:8]).shape == (8,)
        assert device.inference_requests == before + 1

    def test_platform_client(self, pretrained_pilote, tiny_config, pool):
        platform = MagnetoPlatform(tiny_config, seed=0)
        with pytest.raises(NotFittedError):
            platform.serving_client().predict(pool[:4])
        platform.cloud.learner = pretrained_pilote
        platform.cloud.history = object()
        platform.deploy_to_edge()
        client = platform.serving_client()
        assert client is platform.serving_client()  # cached
        predictions = client.predict(pool[:12])
        assert np.array_equal(predictions, pretrained_pilote.predict(pool[:12]))

    def test_fleet_client_matches_legacy_router(self, fleet, pool):
        requests = [
            InferenceRequest(user_id=i, features=pool[2 * i:2 * i + 2])
            for i in range(12)
        ]
        legacy = Router(fleet.devices, seed=9).dispatch_tick(requests)
        client = serve(fleet, routing="hash", seed=9)
        futures = client.submit_many(requests)
        client.drain()
        for future, expected in zip(futures, legacy):
            assert np.array_equal(future.result().class_ids, expected)

    def test_unknown_target_rejected(self):
        with pytest.raises(ServingError, match="don't know how to serve"):
            serve(object())

    def test_empty_fleet_rejected(self, tiny_config):
        with pytest.raises(ServingError, match="provision"):
            serve(FleetCoordinator(tiny_config))

    def test_result_autodrains_scheduler(self, fleet, pool):
        client = serve(fleet, seed=1)
        future = client.submit(PredictRequest(user_id=3, features=pool[:2]))
        assert not future.done()
        assert future.result().n_windows == 2  # result() drains transparently


class TestRoutingPolicies:
    def test_unknown_policy_is_typed_error(self):
        with pytest.raises(RoutingError):
            make_routing_policy("round-robin")
        assert issubclass(RoutingError, ValueError)

    def test_hash_policy_sticky_and_seeded(self, fleet, pool):
        first = serve(fleet, routing="hash", seed=4)
        second = serve(fleet, routing="hash", seed=4)
        requests = [
            InferenceRequest(user_id=u, features=pool[:1]) for u in (7, 7, 7, 123)
        ]
        devices_first = [
            f.result().device_id for f in first.submit_many(requests)
        ]
        devices_second = [
            f.result().device_id for f in second.submit_many(requests)
        ]
        assert devices_first == devices_second  # same seed, same placement
        assert len(set(devices_first[:3])) == 1  # sticky per user

    def test_least_loaded_balances_skewed_users(self, fleet, pool):
        spec = WorkloadSpec(pattern="zipf", n_users=40, requests_per_tick=60,
                            n_ticks=2, zipf_exponent=1.6)

        def max_share(routing):
            client = serve(fleet, routing=routing, seed=2)
            for requests in TrafficGenerator(pool, spec, seed=6).ticks():
                client.submit_many(requests)
                client.drain()
            report = client.report()
            return max(s.requests for s in report.per_device.values())

        assert max_share("least-loaded") < max_share("hash")

    def test_p2c_deterministic_and_in_range(self, fleet, pool):
        requests = [
            InferenceRequest(user_id=u, features=pool[:1]) for u in range(30)
        ]

        def placements():
            client = serve(fleet, routing="p2c", seed=5)
            futures = client.submit_many(requests)
            client.drain()
            return [f.result().device_id for f in futures]

        first, second = placements(), placements()
        assert first == second
        assert set(first) <= {0, 1, 2}

    def test_scheduler_rejects_resized_fleet(self, fleet, pool):
        client = serve(fleet, seed=1)
        fleet.provision(1)
        with pytest.raises(RoutingError):
            client.submit(PredictRequest(user_id=0, features=pool[:1]))


class TestDeadlines:
    def test_queued_past_deadline_expires_typed(self, pretrained_pilote, pool):
        client = serve(pretrained_pilote)
        first = client.submit(PredictRequest(user_id=0, features=pool[:64]))
        late = client.submit(PredictRequest(
            user_id=1, features=pool[:1],
            arrival_seconds=1e-7, deadline_seconds=2e-7,
        ))
        client.drain()
        assert first.result().n_windows == 64
        assert isinstance(late.exception(), DeadlineExceededError)
        with pytest.raises(DeadlineExceededError):
            late.result()

    def test_missed_deadline_still_answered_with_flag(self, pretrained_pilote, pool):
        client = serve(pretrained_pilote)
        pending = client.submit(PredictRequest(
            user_id=0, features=pool[:32], deadline_seconds=1e-9,
        ))
        client.drain()
        response = pending.result()  # service started in time, finished late
        assert response.deadline_missed

    def test_expired_requests_excluded_from_served_totals(
        self, pretrained_pilote, pool
    ):
        client = serve(pretrained_pilote)
        served = client.submit(PredictRequest(user_id=0, features=pool[:64]))
        expired = client.submit(PredictRequest(
            user_id=1, features=pool[:1],
            arrival_seconds=1e-7, deadline_seconds=2e-7,
        ))
        client.drain()
        assert served.done() and isinstance(expired.exception(), DeadlineExceededError)
        report = client.report()
        assert report.total_requests == 1
        assert report.total_expired == 1
        assert sum(s.requests for s in report.per_device.values()) == 1

    def test_out_of_order_submission_served_in_arrival_order(
        self, pretrained_pilote, pool
    ):
        client = serve(pretrained_pilote)
        late = client.submit(PredictRequest(
            user_id=0, features=pool[:1], arrival_seconds=1.0,
        ))
        # Submitted second but arrives first — must not be head-of-line
        # blocked behind (and billed for) the arrival-1.0 request.
        early = client.submit(PredictRequest(
            user_id=1, features=pool[:1],
            arrival_seconds=0.0, deadline_seconds=0.9,
        ))
        client.drain()
        assert early.exception() is None  # not spuriously expired
        assert early.result().completed_seconds < 1.0
        assert late.result().completed_seconds >= 1.0

    def test_requests_compare_by_identity(self, pool):
        first = PredictRequest(user_id=1, features=pool[:2])
        twin = PredictRequest(user_id=1, features=pool[:2])
        assert first == first and first != twin  # ndarray-safe identity eq
        assert first in [twin, first]

    def test_errors_travel_through_futures(self, pool):
        device = EdgeDevice()  # no engine attached
        client = serve(device)
        with pytest.raises(NotFittedError, match="attach_inference"):
            client.predict(pool[:2])


class TestInFlightReplacement:
    def test_replace_device_no_drop_no_double(self, fleet, pool, tmp_path):
        """LoadBalancer.replace_device with requests in flight: every request
        is answered exactly once, queued work lands on the replacement."""
        from repro.fleet import CheckpointStore

        client = serve(fleet, routing="hash", seed=1)
        balancer = LoadBalancer(fleet.devices, seed=1)
        requests = [
            InferenceRequest(user_id=u, features=pool[:1]) for u in range(30)
        ]
        futures = client.submit_many(requests)
        assert client.pending_requests == 30

        crashed = fleet.devices[0]
        store = CheckpointStore(tmp_path)
        replacement = store.restore(store.save(crashed))
        balancer.replace_device(crashed.device_id, replacement)
        assert fleet.devices[0] is replacement  # live list is shared

        completions = []
        for future in futures:
            future.add_done_callback(lambda f: completions.append(f))
        client.drain()
        assert len(completions) == 30  # nothing dropped, nothing doubled
        assert all(f.done() and f.exception() is None for f in futures)
        assert crashed.edge.inference_requests == 0
        assert replacement.edge.inference_requests > 0  # queued work moved over
        report = client.report()
        assert sum(s.requests for s in report.per_device.values()) == 30

    def test_replace_unknown_device_rejected(self, fleet):
        with pytest.raises(ConfigurationError):
            LoadBalancer(fleet.devices, seed=1).replace_device(99, fleet.devices[0])
        with pytest.raises(RoutingError):
            serve(fleet).replace_device(99, fleet.devices[0])


class TestDeprecationShims:
    def test_edge_predict_warns_and_matches_client(self, pretrained_pilote, tiny_config, pool):
        platform = MagnetoPlatform(tiny_config, seed=0)
        platform.cloud.learner = pretrained_pilote
        platform.cloud.history = object()
        platform.deploy_to_edge()
        fresh = serve(platform).predict(pool[:10])
        with pytest.warns(DeprecationWarning, match="edge_predict is deprecated"):
            legacy = platform.edge_predict(pool[:10])
        assert np.array_equal(legacy, fresh)

    def test_edge_device_infer_warns_and_matches_client(self, pretrained_pilote, pool):
        device = EdgeDevice()
        device.attach_inference(pretrained_pilote.inference_engine())
        fresh = serve(device).predict(pool[:6])
        with pytest.warns(DeprecationWarning, match="EdgeDevice.infer is deprecated"):
            legacy = device.infer(pool[:6])
        assert np.array_equal(legacy, fresh)

    def test_router_submit_warns_and_matches_dispatch(self, fleet, pool):
        request = InferenceRequest(user_id=17, features=pool[:4])
        reference = Router(fleet.devices, seed=3).dispatch_tick([request])[0]
        router = Router(fleet.devices, seed=3)
        with pytest.warns(DeprecationWarning, match="Router.submit is deprecated"):
            predictions = router.submit(request)
        assert np.array_equal(predictions, reference)
        # submit() traffic is folded into the router's own report.
        assert router.report().total_requests == 1

    def test_router_report_merges_submit_and_dispatch(self, fleet, pool):
        router = Router(fleet.devices, seed=3)
        router.dispatch_tick(
            [InferenceRequest(user_id=u, features=pool[:1]) for u in range(6)]
        )
        with pytest.warns(DeprecationWarning):
            router.submit(InferenceRequest(user_id=0, features=pool[:2]))
        report = router.report()
        assert report.total_requests == 7
        assert report.total_windows == 8
        assert sum(s.requests for s in report.per_device.values()) == 7

    def test_shims_preserve_empty_batch_behaviour(self, pretrained_pilote, tiny_config):
        empty = np.empty((0, pretrained_pilote.model.input_dim))
        device = EdgeDevice()
        device.attach_inference(pretrained_pilote.inference_engine())
        with pytest.warns(DeprecationWarning):
            assert device.infer(empty).shape == (0,)
        platform = MagnetoPlatform(tiny_config, seed=0)
        platform.cloud.learner = pretrained_pilote
        platform.cloud.history = object()
        platform.deploy_to_edge()
        with pytest.warns(DeprecationWarning):
            assert platform.edge_predict(empty).shape == (0,)


class TestWorkloadSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests_per_tick": 0},
            {"requests_per_tick": -3},
            {"n_ticks": 0},
            {"n_users": -1},
            {"windows_per_request": 0},
        ],
    )
    def test_non_positive_values_raise_valueerror(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_error_message_names_the_field(self):
        with pytest.raises(ValueError, match="requests_per_tick"):
            WorkloadSpec(requests_per_tick=0)


class TestRolloutPolicies:
    def test_staged_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            StagedRollout(fractions=())
        with pytest.raises(ConfigurationError):
            StagedRollout(fractions=(0.5, 0.25))
        with pytest.raises(ConfigurationError):
            StagedRollout(fractions=(0.0, 1.0))

    def test_all_at_once_matches_legacy_deploy(self, package, tiny_config, pool):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(2)
        coordinator.deploy(package, rollout=AllAtOnceRollout())
        assert all(d.is_deployed for d in coordinator.devices)
        assert coordinator.active_rollout.complete
        assert coordinator.cohort_of(0) == "fleet"

    def test_staged_rollout_advances(self, package, tiny_config):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(4)
        coordinator.deploy(package, rollout=StagedRollout(fractions=(0.25, 0.5, 1.0)))
        assert sum(d.is_deployed for d in coordinator.devices) == 1
        assert coordinator.cohort_of(0) == "stage-0"
        assert coordinator.advance_rollout() == [1]
        assert coordinator.advance_rollout() == [2, 3]
        assert coordinator.active_rollout.complete
        assert coordinator.advance_rollout() == []

    def test_advance_without_rollout_rejected(self, fleet):
        with pytest.raises(ConfigurationError, match="no rollout"):
            fleet.advance_rollout()
        with pytest.raises(ConfigurationError, match="no rollout"):
            fleet.rollout_report()

    def test_ab_rollout_confines_users_to_cohorts(self, package, tiny_config, pool, run_scenario):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(4)
        coordinator.deploy(package)                       # baseline everywhere
        coordinator.deploy(package, rollout=ABRollout(treatment_fraction=0.5))
        rollout = coordinator.active_rollout
        arms = set(rollout.plan.cohorts.values())
        assert arms == {"treatment", "control"}
        policy = rollout.policy
        cohorts = {u: policy.user_cohort(u) for u in range(200)}
        assert set(cohorts.values()) == {"treatment", "control"}
        assert all(policy.user_cohort(u) == cohorts[u] for u in range(200))

        client = serve(coordinator, seed=3)
        requests = [
            InferenceRequest(user_id=u, features=pool[:1]) for u in range(60)
        ]
        futures = client.submit_many(requests)
        client.drain()
        for request, future in zip(requests, futures):
            device_id = future.result().device_id
            assert rollout.plan.cohorts[device_id] == cohorts[request.user_id]

        report = coordinator.rollout_report(run_scenario.test, serving=client.report())
        assert set(report.per_cohort) == {"treatment", "control"}
        assert sum(r.requests for r in report.per_cohort.values()) == 60
        for row in report.per_cohort.values():
            assert row.accuracy is not None and 0.0 <= row.accuracy <= 1.0
            assert row.n_deployed == len(row.device_ids)
        text = report.to_text()
        assert "treatment" in text and "control" in text

    def test_ab_needs_two_devices_and_valid_fraction(self, package, tiny_config):
        with pytest.raises(ConfigurationError):
            ABRollout(treatment_fraction=1.0)
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(1)
        with pytest.raises(ConfigurationError):
            coordinator.deploy(package, rollout=ABRollout())

    def test_serving_mid_staged_rollout_uses_deployed_devices_only(
        self, package, tiny_config, pool
    ):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(4)
        coordinator.deploy(package, rollout=StagedRollout(fractions=(0.25, 1.0)))
        deployed = {d.device_id for d in coordinator.devices if d.is_deployed}
        client = serve(coordinator, seed=2)
        futures = client.submit_many(
            [InferenceRequest(user_id=u, features=pool[:1]) for u in range(20)]
        )
        client.drain()
        assert {f.result().device_id for f in futures} <= deployed
        coordinator.advance_rollout()
        futures = client.submit_many(
            [InferenceRequest(user_id=u, features=pool[:1]) for u in range(20)]
        )
        client.drain()
        assert all(f.exception() is None for f in futures)

    def test_hash_placement_sticky_across_rollout_growth(
        self, package, tiny_config, pool
    ):
        """Users whose full-fleet hash lane is deployed keep it mid-rollout."""
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(4)
        coordinator.deploy(package, rollout=StagedRollout(fractions=(0.5, 1.0)))
        client = serve(coordinator, routing="hash", seed=6)
        requests = [
            InferenceRequest(user_id=u, features=pool[:1]) for u in range(40)
        ]
        preferred = client.scheduler.policy.assign_batch(
            requests, np.arange(40), client.scheduler
        )
        staged = [f.result().device_id for f in client.submit_many(requests)]
        deployed = {d.device_id for d in coordinator.devices if d.is_deployed}
        for user, full_fleet_lane in enumerate(preferred):
            if int(full_fleet_lane) in deployed:
                assert staged[user] == int(full_fleet_lane)
        coordinator.advance_rollout()
        complete = [f.result().device_id for f in client.submit_many(requests)]
        assert complete == [int(lane) for lane in preferred]

    def test_unservable_cohort_rejected_before_enqueue(self, package, tiny_config, pool):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(2)
        # AB rollout on an undeployed fleet: the control arm has no learner.
        coordinator.deploy(package, rollout=ABRollout(treatment_fraction=0.5))
        client = serve(coordinator, seed=0)
        requests = [
            InferenceRequest(user_id=u, features=pool[:1]) for u in range(40)
        ]
        with pytest.raises(RoutingError, match="no deployed devices"):
            client.submit_many(requests)
        assert client.pending_requests == 0  # nothing half-submitted

    def test_rollout_by_registry_name(self, package, tiny_config):
        coordinator = FleetCoordinator(tiny_config, seed=0)
        coordinator.provision(2)
        coordinator.deploy(package, rollout="all-at-once")
        assert coordinator.active_rollout.policy.name == "all-at-once"
        with pytest.raises(ConfigurationError):
            coordinator.deploy(package, rollout="percentage")


class TestCli:
    def test_serve_subcommand_and_routing_flag(self):
        arguments = build_parser().parse_args(
            ["serve", "--devices", "4", "--routing", "least-loaded"]
        )
        assert arguments.experiment == "serve"
        assert arguments.devices == 4
        assert arguments.routing == "least-loaded"
        assert build_parser().parse_args(["fleet-sim", "--routing", "p2c"]).routing == "p2c"

    def test_unknown_routing_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet-sim", "--routing", "round-robin"])


class TestSchedulerDirect:
    def test_needs_devices(self):
        with pytest.raises(RoutingError):
            EventLoopScheduler([])

    def test_empty_submit_and_idle_drain(self, fleet):
        scheduler = EventLoopScheduler(fleet.devices, HashRouting(), seed=0)
        assert scheduler.submit_many([]) == []
        assert scheduler.drain() == 0
        assert scheduler.report().total_requests == 0

    def test_report_latencies_feed_percentiles(self, fleet, pool):
        client = serve(fleet, seed=2)
        client.submit_many(
            [InferenceRequest(user_id=u, features=pool[:1]) for u in range(12)]
        )
        client.drain()
        report = client.report()
        assert report.p99_latency_seconds > 0
        assert report.latency_percentile(50.0) <= report.latency_percentile(99.0)
        assert report.mean_latency_seconds > 0
