"""Tests for herding/random exemplar selection and the ExemplarStore."""

import numpy as np
import pytest

from repro.core.exemplars import ExemplarStore, herding_selection, random_selection
from repro.exceptions import DataError


def _clustered_class(seed=0, n=50, d=4, outliers=5):
    rng = np.random.default_rng(seed)
    core = rng.normal(0.0, 0.5, size=(n - outliers, d))
    far = rng.normal(8.0, 0.5, size=(outliers, d))
    return np.concatenate([core, far], axis=0)


class TestHerdingSelection:
    def test_selected_mean_approximates_prototype(self):
        embeddings = _clustered_class()
        features = embeddings.copy()
        prototype = embeddings.mean(axis=0)
        indices = herding_selection(features, embeddings, 10)
        herded_error = np.linalg.norm(embeddings[indices].mean(axis=0) - prototype)
        rng = np.random.default_rng(0)
        random_errors = []
        for _ in range(20):
            random_idx = rng.choice(embeddings.shape[0], size=10, replace=False)
            random_errors.append(np.linalg.norm(embeddings[random_idx].mean(axis=0) - prototype))
        # Herding tracks the prototype at least as well as a typical random draw.
        assert herded_error <= np.mean(random_errors)

    def test_no_duplicate_selection(self):
        embeddings = _clustered_class(1)
        indices = herding_selection(embeddings, embeddings, 20)
        assert len(set(indices.tolist())) == 20

    def test_budget_capped_at_population(self):
        embeddings = np.random.default_rng(0).normal(size=(5, 3))
        assert herding_selection(embeddings, embeddings, 10).shape[0] == 5

    def test_first_pick_is_closest_to_prototype(self):
        embeddings = np.array([[0.0, 0.0], [1.0, 1.0], [0.1, 0.1], [5.0, 5.0]])
        prototype = embeddings.mean(axis=0)
        first = herding_selection(embeddings, embeddings, 1)[0]
        distances = np.linalg.norm(embeddings - prototype, axis=1)
        assert first == int(np.argmin(distances))

    def test_invalid_arguments(self):
        embeddings = np.random.default_rng(0).normal(size=(5, 3))
        with pytest.raises(DataError):
            herding_selection(embeddings, embeddings, 0)
        with pytest.raises(DataError):
            herding_selection(embeddings[:3], embeddings, 2)
        with pytest.raises(DataError):
            herding_selection(embeddings, np.zeros(5), 2)


class TestRandomSelection:
    def test_count_and_uniqueness(self):
        features = np.random.default_rng(0).normal(size=(30, 4))
        indices = random_selection(features, features, 10, rng=0)
        assert indices.shape[0] == 10
        assert len(set(indices.tolist())) == 10

    def test_deterministic_with_seed(self):
        features = np.random.default_rng(0).normal(size=(30, 4))
        assert np.array_equal(
            random_selection(features, features, 5, rng=7),
            random_selection(features, features, 5, rng=7),
        )

    def test_invalid_budget(self):
        with pytest.raises(DataError):
            random_selection(np.zeros((5, 2)), np.zeros((5, 2)), 0)


class TestExemplarStore:
    def _store_with_two_classes(self, strategy="herding", capacity=20):
        store = ExemplarStore(capacity=capacity, strategy=strategy, rng=0)
        rng = np.random.default_rng(0)
        for class_id in (0, 1):
            rows = rng.normal(class_id * 3.0, 1.0, size=(40, 4))
            store.select(class_id, rows, rows, n_exemplars=10)
        return store

    def test_selection_and_lookup(self):
        store = self._store_with_two_classes()
        assert store.classes == [0, 1]
        assert store.get(0).shape == (10, 4)
        assert store.total_exemplars() == 20
        assert store.exemplars_per_class() == {0: 10, 1: 10}

    def test_per_class_budget_follows_algorithm1(self):
        store = ExemplarStore(capacity=800)
        assert store.per_class_budget(4) == 200
        assert ExemplarStore(capacity=None).per_class_budget(4) is None

    def test_as_dataset_round_trip(self):
        store = self._store_with_two_classes()
        features, labels = store.as_dataset()
        assert features.shape == (20, 4)
        assert sorted(np.unique(labels).tolist()) == [0, 1]

    def test_as_dataset_empty_raises(self):
        with pytest.raises(DataError):
            ExemplarStore().as_dataset()

    def test_nbytes_float32(self):
        store = self._store_with_two_classes()
        assert store.nbytes() == 20 * 4 * 4

    def test_rebalance_trims(self):
        store = self._store_with_two_classes()
        store.rebalance(4)
        assert store.exemplars_per_class() == {0: 4, 1: 4}
        with pytest.raises(DataError):
            store.rebalance(0)

    def test_set_and_remove(self):
        store = ExemplarStore()
        store.set_exemplars(3, np.ones((5, 2)))
        assert 3 in store
        store.remove(3)
        assert 3 not in store
        with pytest.raises(KeyError):
            store.get(3)

    def test_random_strategy_store(self):
        store = self._store_with_two_classes(strategy="random")
        assert store.total_exemplars() == 20

    def test_describe(self):
        description = self._store_with_two_classes().describe()
        assert description["total_exemplars"] == 20
        assert description["strategy"] == "herding"

    def test_invalid_inputs(self):
        with pytest.raises(DataError):
            ExemplarStore(capacity=0)
        with pytest.raises(DataError):
            ExemplarStore(strategy="coreset")
        store = ExemplarStore()
        with pytest.raises(DataError):
            store.select(0, np.zeros((0, 3)), np.zeros((0, 3)))
        with pytest.raises(DataError):
            store.set_exemplars(0, np.zeros((0, 3)))

    def test_paper_support_set_size_accounting(self):
        """200 exemplars/class x 4 classes x 80 float32 features < 256 KB."""
        store = ExemplarStore(capacity=800, strategy="random", rng=0)
        rng = np.random.default_rng(0)
        for class_id in range(4):
            rows = rng.normal(size=(250, 80))
            store.select(class_id, rows, rows, n_exemplars=200)
        assert store.total_exemplars() == 800
        assert store.nbytes() == 800 * 80 * 4
        assert store.nbytes() < 256 * 1024


class TestAliasingContract:
    """Pin both sides of the ``set_exemplars(copy=...)`` aliasing contract."""

    def _policy_rows(self, seed=0, shape=(6, 4)):
        from repro.backend import get_backend

        rng = np.random.default_rng(seed)
        return get_backend().asarray(rng.normal(size=shape))

    def test_copy_true_isolates_store_from_posthoc_mutation(self):
        rows = self._policy_rows()
        snapshot = rows.copy()
        store = ExemplarStore()
        store.set_exemplars(0, rows)  # copy=True default
        rows[:] = -1.0
        assert np.array_equal(store.get(0), snapshot)

    def test_copy_false_aliases_the_handed_over_array(self):
        rows = self._policy_rows(seed=1)
        store = ExemplarStore()
        store.set_exemplars(0, rows, copy=False)
        assert store.get(0) is rows
        rows[0, 0] = 123.0  # the documented hazard, demonstrated
        assert store.get(0)[0, 0] == 123.0

    def test_copy_false_with_dtype_cast_still_copies(self):
        """asarray with a differing dtype materialises a fresh buffer."""
        from repro.backend import get_backend

        rows = np.random.default_rng(2).normal(size=(5, 3))
        cast = rows.astype(
            np.float32 if np.dtype(get_backend().asarray(rows).dtype) != np.float32
            else np.float64
        )
        store = ExemplarStore()
        store.set_exemplars(0, cast, copy=False)
        assert store.get(0) is not cast

    def test_replacing_entries_never_mutates_shared_rows(self):
        """The store-side promise: rebalance/select replace, never write."""
        rows = self._policy_rows(seed=3, shape=(8, 4))
        snapshot = rows.copy()
        store = ExemplarStore()
        store.set_exemplars(0, rows, copy=False)
        store.rebalance(3)  # slices the entry; the shared buffer is untouched
        assert np.array_equal(rows, snapshot)
        store.set_exemplars(0, self._policy_rows(seed=4))
        assert np.array_equal(rows, snapshot)

    def test_set_selected_matches_select_bitwise(self):
        features = _clustered_class(seed=5)
        serial = ExemplarStore(strategy="herding")
        indices = serial.select(0, features, features, n_exemplars=7)
        sharded = ExemplarStore(strategy="herding")
        sharded.set_selected(0, features, indices)
        assert np.array_equal(serial.get(0), sharded.get(0))
        # The stored rows are a copy, not a view into the candidates.
        assert not np.shares_memory(sharded.get(0), features)

    def test_set_selected_validates_indices(self):
        store = ExemplarStore()
        features = _clustered_class(seed=6)
        with pytest.raises(DataError):
            store.set_selected(0, features, np.array([], dtype=np.int64))
        with pytest.raises(DataError):
            store.set_selected(0, features, np.array([features.shape[0]]))
        with pytest.raises(DataError):
            store.set_selected(0, features, np.array([-1]))
