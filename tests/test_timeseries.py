"""Tests for the time-series preprocessing substrate."""

import numpy as np
import pytest

from repro.exceptions import DataError, ShapeError
from repro.timeseries.denoise import denoise, low_pass_filter, median_filter, moving_average
from repro.timeseries.jerk import jerk, jerk_magnitude
from repro.timeseries.normalize import (
    StandardScaler,
    min_max_scale,
    per_window_normalize,
    z_score,
)
from repro.timeseries.resample import linear_resample, resample_to_rate
from repro.timeseries.window import (
    segment_windows,
    sliding_windows,
    validate_window_batch,
    windows_per_second,
)


class TestWindowing:
    def test_segment_shapes(self):
        stream = np.arange(250 * 3, dtype=float).reshape(250, 3)
        windows = segment_windows(stream, 120)
        assert windows.shape == (2, 120, 3)

    def test_segment_preserves_order(self):
        stream = np.arange(10, dtype=float).reshape(10, 1)
        windows = segment_windows(stream, 5)
        assert np.allclose(windows[0, :, 0], np.arange(5))
        assert np.allclose(windows[1, :, 0], np.arange(5, 10))

    def test_segment_drop_last_false_requires_exact_multiple(self):
        stream = np.zeros((11, 2))
        with pytest.raises(DataError):
            segment_windows(stream, 5, drop_last=False)

    def test_segment_too_short_raises(self):
        with pytest.raises(DataError):
            segment_windows(np.zeros((3, 2)), 5)

    def test_sliding_windows_overlap(self):
        stream = np.arange(10, dtype=float).reshape(10, 1)
        windows = sliding_windows(stream, window_length=4, step=2)
        assert windows.shape == (4, 4, 1)
        assert np.allclose(windows[1, :, 0], [2, 3, 4, 5])

    def test_windows_per_second(self):
        assert windows_per_second(120.0) == 120
        assert windows_per_second(50.0, 2.0) == 100
        with pytest.raises(DataError):
            windows_per_second(0.0)

    def test_validate_window_batch(self):
        assert validate_window_batch(np.zeros((2, 10, 3))) == (2, 10, 3)
        with pytest.raises(ShapeError):
            validate_window_batch(np.zeros((2, 10)))


class TestDenoising:
    def test_moving_average_smooths_noise(self):
        rng = np.random.default_rng(0)
        clean = np.sin(np.linspace(0, 4 * np.pi, 200))[:, None]
        noisy = clean + rng.normal(0, 0.5, size=clean.shape)
        smoothed = moving_average(noisy, window=9)
        assert smoothed.shape == noisy.shape
        assert np.mean((smoothed - clean) ** 2) < np.mean((noisy - clean) ** 2)

    def test_moving_average_window_one_is_identity(self):
        data = np.random.default_rng(0).normal(size=(20, 2))
        assert np.allclose(moving_average(data, window=1), data)

    def test_moving_average_1d_input(self):
        data = np.ones(30)
        assert moving_average(data, window=5).shape == (30,)

    def test_median_filter_removes_impulses(self):
        data = np.zeros((50, 1))
        data[25, 0] = 100.0
        assert abs(median_filter(data, window=5)[25, 0]) < 1.0

    def test_low_pass_attenuates_high_frequency(self):
        t = np.arange(0, 2, 1 / 120)
        low = np.sin(2 * np.pi * 1.0 * t)
        high = np.sin(2 * np.pi * 40.0 * t)
        mixed = (low + high)[:, None]
        filtered = low_pass_filter(mixed, cutoff_hz=5.0, sampling_rate_hz=120.0)
        assert np.mean((filtered[:, 0] - low) ** 2) < 0.05

    def test_low_pass_rejects_cutoff_above_nyquist(self):
        with pytest.raises(DataError):
            low_pass_filter(np.zeros((100, 1)), cutoff_hz=70.0, sampling_rate_hz=120.0)

    def test_denoise_dispatch_and_unknown(self):
        data = np.random.default_rng(0).normal(size=(30, 2))
        assert denoise(data, "none").shape == data.shape
        assert denoise(data, "moving_average", window=3).shape == data.shape
        with pytest.raises(DataError):
            denoise(data, "fourier")

    def test_invalid_window_sizes(self):
        with pytest.raises(DataError):
            moving_average(np.zeros((5, 1)), window=0)
        with pytest.raises(DataError):
            median_filter(np.zeros((5, 1)), window=-1)


class TestNormalization:
    def test_z_score_zero_mean_unit_std(self):
        data = np.random.default_rng(0).normal(3.0, 2.0, size=(200, 4))
        normalised = z_score(data)
        assert np.allclose(normalised.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(normalised.std(axis=0), 1.0, atol=1e-10)

    def test_z_score_with_external_statistics(self):
        data = np.ones((5, 2))
        normalised = z_score(data, mean=np.zeros(2), std=np.ones(2) * 2)
        assert np.allclose(normalised, 0.5)

    def test_z_score_constant_column_is_safe(self):
        data = np.ones((10, 1))
        assert np.all(np.isfinite(z_score(data)))

    def test_z_score_return_stats(self):
        data = np.random.default_rng(1).normal(size=(20, 3))
        _, mean, std = z_score(data, return_stats=True)
        assert mean.shape == (3,) and std.shape == (3,)

    def test_min_max_scale_range(self):
        data = np.random.default_rng(0).normal(size=(50, 3))
        scaled = min_max_scale(data, feature_range=(-1.0, 1.0))
        assert scaled.min() >= -1.0 - 1e-9 and scaled.max() <= 1.0 + 1e-9

    def test_min_max_invalid_range(self):
        with pytest.raises(ValueError):
            min_max_scale(np.ones((3, 2)), feature_range=(1.0, 0.0))

    def test_per_window_normalize(self):
        windows = np.random.default_rng(0).normal(5.0, 2.0, size=(4, 50, 3))
        normalised = per_window_normalize(windows)
        assert np.allclose(normalised.mean(axis=1), 0.0, atol=1e-9)

    def test_standard_scaler_round_trip(self):
        data = np.random.default_rng(0).normal(2.0, 3.0, size=(100, 4))
        scaler = StandardScaler().fit(data)
        transformed = scaler.transform(data)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        with pytest.raises(RuntimeError):
            StandardScaler().transform(data)


class TestJerkAndResample:
    def test_jerk_of_linear_signal_is_constant(self):
        signal = np.arange(10.0)[:, None] * 2.0
        derivative = jerk(signal, sampling_rate_hz=1.0)
        assert np.allclose(derivative, 2.0)

    def test_jerk_scales_with_sampling_rate(self):
        signal = np.arange(10.0)[:, None]
        assert np.allclose(jerk(signal, sampling_rate_hz=120.0), 120.0)

    def test_jerk_3d_batch(self):
        windows = np.random.default_rng(0).normal(size=(3, 20, 4))
        assert jerk(windows).shape == (3, 19, 4)

    def test_jerk_magnitude_shape_and_positivity(self):
        triaxial = np.random.default_rng(0).normal(size=(30, 3))
        magnitude = jerk_magnitude(triaxial)
        assert magnitude.shape == (29,)
        assert np.all(magnitude >= 0)

    def test_jerk_magnitude_requires_three_axes(self):
        with pytest.raises(DataError):
            jerk_magnitude(np.zeros((10, 2)))

    def test_linear_resample_lengths(self):
        stream = np.linspace(0, 1, 50)[:, None]
        assert linear_resample(stream, 120).shape == (120, 1)
        assert linear_resample(stream, 10).shape == (10, 1)

    def test_linear_resample_preserves_endpoints(self):
        stream = np.linspace(0, 9, 10)[:, None]
        resampled = linear_resample(stream, 19)
        assert resampled[0, 0] == pytest.approx(0.0)
        assert resampled[-1, 0] == pytest.approx(9.0)

    def test_resample_to_rate(self):
        stream = np.zeros((60, 2))
        assert resample_to_rate(stream, 60.0, 120.0).shape[0] == 120

    def test_resample_invalid_arguments(self):
        with pytest.raises(DataError):
            linear_resample(np.zeros((5, 1)), 1)
        with pytest.raises(DataError):
            resample_to_rate(np.zeros((5, 1)), 0.0, 10.0)
