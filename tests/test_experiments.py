"""Integration tests for the experiment modules (quick scale).

These exercise each table/figure reproduction end to end at the smallest
useful scale; the shape checks mirror the paper's qualitative claims without
requiring the paper's absolute numbers.
"""

import numpy as np
import pytest

from repro.data.activities import Activity
from repro.experiments import ablations, edge_resources, figure4, figure5, figure6, figure7, table2
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.exceptions import ConfigurationError


QUICK = ExperimentSettings.quick(seed=11)


class TestExperimentSettings:
    def test_presets_ordering(self):
        quick = ExperimentSettings.quick()
        default = ExperimentSettings.default()
        paper = ExperimentSettings.paper_scale()
        assert quick.samples_per_class < default.samples_per_class < paper.samples_per_class
        assert paper.n_rounds == 5
        assert paper.config.hidden_dims == (1024, 512, 128, 64)

    def test_make_dataset_uses_settings(self):
        dataset = make_dataset(ExperimentSettings.quick(seed=1))
        assert dataset.n_samples == 5 * ExperimentSettings.quick().samples_per_class
        assert dataset.n_features == 80

    def test_invalid_settings(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(samples_per_class=5)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(n_rounds=0)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        settings = ExperimentSettings.quick(seed=11)
        return table2.run(
            settings, activities=[Activity.RUN, Activity.STILL]
        )

    def test_rows_and_columns(self, result):
        assert len(result.table) == 2
        assert result.table.columns == ["new_class", "pre-trained", "re-trained", "pilote"]
        assert set(result.per_scenario) == {"Run", "Still"}

    def test_aggregates_have_rounds(self, result):
        for aggregates in result.per_scenario.values():
            for aggregate in aggregates.values():
                assert aggregate.n_rounds == QUICK.n_rounds
                assert 0.0 <= aggregate.mean <= 1.0

    def test_pilote_competitive_with_retrained(self, result):
        """The paper's headline: PILOTE >= Re-trained on (at least most of) the scenarios."""
        assert result.method_wins("pilote", "re-trained") >= 1

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "Table 2" in text and "Run" in text and "±" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(ExperimentSettings.quick(seed=11))

    def test_confusion_matrices_present(self, result):
        assert set(result.matrices) == {"re-trained", "pilote"}
        for matrix in result.matrices.values():
            assert matrix.matrix.shape == (5, 5)
            assert matrix.matrix.sum() > 0

    def test_walk_run_confusion_reported(self, result):
        assert set(result.walk_to_run_rate) == {"re-trained", "pilote"}
        for rate in result.walk_to_run_rate.values():
            assert 0.0 <= rate <= 1.0

    def test_pilote_confuses_walk_no_more_than_retrained(self, result):
        assert (
            result.walk_to_run_rate["pilote"]
            <= result.walk_to_run_rate["re-trained"] + 0.10
        )

    def test_to_text(self, result):
        text = result.to_text()
        assert "Walk predicted as Run" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(ExperimentSettings.quick(seed=11), max_points_per_class=40)

    def test_methods_and_metrics(self, result):
        assert set(result.separation) == {"pre-trained", "re-trained", "pilote"}
        for metrics in result.separation.values():
            assert "silhouette" in metrics and "intra_inter_ratio" in metrics

    def test_projections_are_2d(self, result):
        for projection in result.projections.values():
            for points in projection.values():
                assert points.shape[1] == 2

    def test_pilote_separation_not_worse_than_pretrained(self, result):
        assert (
            result.separation["pilote"]["silhouette"]
            >= result.separation["pre-trained"]["silhouette"] - 0.15
        )

    def test_to_text_with_scatter(self, result):
        assert "silhouette" in result.to_text()
        assert "embedding space" in result.to_text(include_scatter=True)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        settings = ExperimentSettings.quick(seed=11)
        settings = ExperimentSettings(
            samples_per_class=settings.samples_per_class,
            n_rounds=1,
            config=settings.config,
            exemplars_per_class=settings.exemplars_per_class,
            seed=11,
        )
        return figure6.run(settings, exemplar_counts=(10, 40), strategies=("herding", "random"))

    def test_series_structure(self, result):
        assert result.exemplar_counts == [10, 40]
        assert set(result.series) == {"herding", "random"}
        for methods in result.series.values():
            assert set(methods) == {"pre-trained", "re-trained", "pilote"}
            for aggregates in methods.values():
                assert len(aggregates) == 2

    def test_mean_series_flattening(self, result):
        flat = result.mean_series()
        assert len(flat) == 6
        assert all(len(v) == 2 for v in flat.values())

    def test_to_text_contains_plot(self, result):
        text = result.to_text()
        assert "exemplars" in text and "accuracy vs. exemplars per class" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        settings = ExperimentSettings.quick(seed=11)
        settings = ExperimentSettings(
            samples_per_class=settings.samples_per_class,
            n_rounds=1,
            config=settings.config,
            exemplars_per_class=30,
            seed=11,
        )
        return figure7.run(settings, sample_counts=(10, 40))

    def test_series_structure(self, result):
        assert result.sample_counts == [10, 40]
        assert set(result.series) == {"pre-trained", "re-trained", "pilote"}

    def test_accuracies_valid(self, result):
        for aggregates in result.series.values():
            for aggregate in aggregates:
                assert 0.0 <= aggregate.mean <= 1.0

    def test_pilote_handles_few_samples(self, result):
        """PILOTE with very few new-class samples should stay above the pre-trained reference."""
        pilote_small = result.series["pilote"][0].mean
        pretrained_small = result.series["pre-trained"][0].mean
        assert pilote_small >= pretrained_small - 0.10

    def test_to_text(self, result):
        assert "new-class" in result.to_text()


class TestEdgeResources:
    @pytest.fixture(scope="class")
    def result(self):
        return edge_resources.run(ExperimentSettings.quick(seed=11), storage_budgets=(50, 200))

    def test_storage_rows(self, result):
        assert len(result.storage_rows) == 2
        assert result.storage_rows[0]["bytes"] < result.storage_rows[1]["bytes"]

    def test_latency_report(self, result):
        assert result.latency.epochs_run >= 1
        assert result.latency.mean_epoch_seconds > 0
        assert result.accuracy_after_increment > 0.4

    def test_device_extrapolations(self, result):
        assert "wearable" in result.device_latencies
        assert (
            result.device_latencies["wearable"]["mean_epoch_seconds"]
            > result.latency.mean_epoch_seconds
        )

    def test_to_text(self, result):
        text = result.to_text()
        assert "Support-set storage" in text and "latency" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        settings = ExperimentSettings.quick(seed=11)
        settings = ExperimentSettings(
            samples_per_class=settings.samples_per_class,
            n_rounds=1,
            config=settings.config,
            exemplars_per_class=20,
            seed=11,
        )
        return ablations.run(
            settings, alphas=(0.0, 0.5), margins=(1.0,), variants=("squared", "hadsell")
        )

    def test_tables_present(self, result):
        assert set(result.tables) == {"alpha", "margin", "variant"}
        assert len(result.tables["alpha"]) == 2
        assert len(result.tables["variant"]) == 2

    def test_to_text(self, result):
        text = result.to_text()
        assert "Ablation" in text and "α" in text
