"""Tests for the activity taxonomy and sensor-suite model."""

import pytest

from repro.data.activities import ACTIVITY_NAMES, Activity, activity_from_name, activity_names
from repro.data.sensors import SensorSuite, default_sensor_suite
from repro.exceptions import ConfigurationError, DataError


class TestActivities:
    def test_five_activities(self):
        assert len(list(Activity)) == 5
        assert ACTIVITY_NAMES == ["Drive", "E-scooter", "Run", "Still", "Walk"]

    def test_display_names(self):
        assert Activity.ESCOOTER.display_name == "E-scooter"
        assert Activity.RUN.display_name == "Run"

    def test_activity_names_returns_copy(self):
        names = activity_names()
        names.append("Fly")
        assert len(ACTIVITY_NAMES) == 5

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("Run", Activity.RUN),
            ("walk", Activity.WALK),
            ("E-scooter", Activity.ESCOOTER),
            ("escooter", Activity.ESCOOTER),
            ("  Still ", Activity.STILL),
        ],
    )
    def test_activity_from_name(self, name, expected):
        assert activity_from_name(name) == expected

    def test_unknown_activity_raises(self):
        with pytest.raises(DataError):
            activity_from_name("Swim")

    def test_integer_values_are_stable(self):
        assert int(Activity.DRIVE) == 0
        assert int(Activity.WALK) == 4


class TestSensorSuite:
    def test_default_suite_has_22_channels(self):
        suite = default_sensor_suite()
        assert suite.n_channels == 22
        assert len(suite.triaxial_groups) == 6
        assert len(suite.scalar_channels()) == 4

    def test_window_length_at_120hz(self):
        assert default_sensor_suite(120.0).window_length == 120
        assert default_sensor_suite(50.0).window_length == 50

    def test_triaxial_groups_cover_disjoint_channels(self):
        suite = default_sensor_suite()
        flat = [index for group in suite.triaxial_groups for index in group]
        assert len(flat) == len(set(flat)) == 18

    def test_channel_names_are_unique(self):
        suite = default_sensor_suite()
        assert len(set(suite.channel_names)) == suite.n_channels

    def test_invalid_suites_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSuite(channel_names=(), triaxial_groups=())
        with pytest.raises(ConfigurationError):
            SensorSuite(channel_names=("a", "b"), triaxial_groups=((0, 1, 5),))
        with pytest.raises(ConfigurationError):
            SensorSuite(channel_names=("a",), triaxial_groups=(), sampling_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            SensorSuite(channel_names=("a", "b", "c"), triaxial_groups=((0, 1),))
