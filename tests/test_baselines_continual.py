"""Tests for the classifier-head continual-learning baselines (LwF, iCaRL, GDumb, EWC, ...)."""

import numpy as np
import pytest

from repro.baselines.base import ClassifierConfig, SoftmaxClassifier
from repro.baselines.ewc import EWCBaseline
from repro.baselines.finetune import FineTuneBaseline
from repro.baselines.gdumb import GDumbBaseline
from repro.baselines.icarl import ICaRLBaseline
from repro.baselines.joint import JointTrainingBaseline
from repro.baselines.lwf import LwFBaseline
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.metrics.forgetting import new_class_accuracy, old_class_accuracy


TINY_CLASSIFIER_CONFIG = ClassifierConfig(
    hidden_dims=(24,),
    embedding_dim=12,
    batch_size=16,
    max_epochs=8,
    seed=0,
)


@pytest.fixture(scope="module")
def scenario(run_scenario):
    return run_scenario


class TestSoftmaxClassifier:
    def test_forward_and_logits_shapes(self):
        model = SoftmaxClassifier(10, 3, config=TINY_CLASSIFIER_CONFIG, rng=0)
        batch = np.random.default_rng(0).normal(size=(5, 10))
        assert model.logits(batch).shape == (5, 3)
        assert model.embed(batch).shape == (5, TINY_CLASSIFIER_CONFIG.embedding_dim)

    def test_expand_classes_preserves_old_weights(self):
        model = SoftmaxClassifier(10, 3, config=TINY_CLASSIFIER_CONFIG, rng=0)
        old_weight = model.head.weight.data.copy()
        model.expand_classes(2)
        assert model.n_classes == 5
        assert model.head.weight.data.shape == (TINY_CLASSIFIER_CONFIG.embedding_dim, 5)
        assert np.allclose(model.head.weight.data[:, :3], old_weight)

    def test_expand_requires_positive(self):
        model = SoftmaxClassifier(10, 3, config=TINY_CLASSIFIER_CONFIG, rng=0)
        with pytest.raises(ConfigurationError):
            model.expand_classes(0)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(hidden_dims=())
        with pytest.raises(ConfigurationError):
            SoftmaxClassifier(0, 3)


class TestFineTune:
    def test_base_training_learns_old_classes(self, scenario):
        learner = FineTuneBaseline(TINY_CLASSIFIER_CONFIG, seed=0)
        learner.fit_base(scenario.old_train, scenario.old_validation)
        old_test = scenario.test.select_classes(scenario.old_classes)
        assert learner.evaluate(old_test) > 0.7

    def test_increment_learns_new_but_forgets_old(self, scenario):
        learner = FineTuneBaseline(TINY_CLASSIFIER_CONFIG, seed=0)
        learner.fit_base(scenario.old_train, scenario.old_validation)
        learner.learn_increment(scenario.new_train)
        predictions = learner.predict(scenario.test.features)
        new_acc = new_class_accuracy(scenario.test.labels, predictions, scenario.new_classes)
        old_acc = old_class_accuracy(scenario.test.labels, predictions, scenario.old_classes)
        assert new_acc > 0.8  # the new class is absorbed...
        assert old_acc < 0.7  # ...at the cost of the old ones (catastrophic forgetting)

    def test_increment_before_fit_raises(self, scenario):
        with pytest.raises(NotFittedError):
            FineTuneBaseline(TINY_CLASSIFIER_CONFIG).learn_increment(scenario.new_train)

    def test_predict_unknown_label_mapping_error(self, scenario):
        learner = FineTuneBaseline(TINY_CLASSIFIER_CONFIG, seed=0)
        learner.fit_base(scenario.old_train)
        with pytest.raises(DataError):
            learner._to_indices(np.array([99]))


class TestLwF:
    def test_lwf_reduces_forgetting_relative_to_finetune(self, scenario):
        finetune = FineTuneBaseline(TINY_CLASSIFIER_CONFIG, seed=0)
        finetune.fit_base(scenario.old_train, scenario.old_validation)
        finetune.learn_increment(scenario.new_train)

        lwf = LwFBaseline(TINY_CLASSIFIER_CONFIG, seed=0, distillation_weight=2.0)
        lwf.fit_base(scenario.old_train, scenario.old_validation)
        lwf.learn_increment(scenario.new_train)

        finetune_old = old_class_accuracy(
            scenario.test.labels, finetune.predict(scenario.test.features), scenario.old_classes
        )
        lwf_old = old_class_accuracy(
            scenario.test.labels, lwf.predict(scenario.test.features), scenario.old_classes
        )
        assert lwf_old >= finetune_old

    def test_invalid_distillation_weight(self):
        with pytest.raises(ValueError):
            LwFBaseline(TINY_CLASSIFIER_CONFIG, distillation_weight=-1.0)


class TestICaRL:
    def test_memory_is_balanced_and_bounded(self, scenario):
        learner = ICaRLBaseline(TINY_CLASSIFIER_CONFIG, memory_size=40, seed=0)
        learner.fit_base(scenario.old_train, scenario.old_validation)
        counts = learner.memory.exemplars_per_class()
        assert all(count == 10 for count in counts.values())
        learner.learn_increment(scenario.new_train)
        counts = learner.memory.exemplars_per_class()
        assert all(count <= 10 for count in counts.values())
        assert len(counts) == 5

    def test_prediction_uses_all_classes(self, scenario):
        learner = ICaRLBaseline(TINY_CLASSIFIER_CONFIG, memory_size=50, seed=0)
        learner.fit_base(scenario.old_train, scenario.old_validation)
        learner.learn_increment(scenario.new_train)
        predictions = learner.predict(scenario.test.features)
        assert learner.evaluate(scenario.test) > 0.5
        assert set(np.unique(predictions)).issubset(set(learner.known_classes))

    def test_invalid_memory_size(self):
        with pytest.raises(ValueError):
            ICaRLBaseline(TINY_CLASSIFIER_CONFIG, memory_size=0)


class TestGDumb:
    def test_memory_counts_respect_budget(self, scenario):
        learner = GDumbBaseline(TINY_CLASSIFIER_CONFIG, memory_size=40, seed=0)
        learner.fit_base(scenario.old_train)
        learner.learn_increment(scenario.new_train)
        counts = learner.memory_counts()
        assert sum(counts.values()) <= 40 + 5  # per-class rounding slack
        assert len(counts) == 5

    def test_accuracy_above_chance(self, scenario):
        learner = GDumbBaseline(TINY_CLASSIFIER_CONFIG, memory_size=60, seed=0)
        learner.fit_base(scenario.old_train)
        learner.learn_increment(scenario.new_train)
        assert learner.evaluate(scenario.test) > 0.4

    def test_increment_before_fit_raises(self, scenario):
        with pytest.raises(NotFittedError):
            GDumbBaseline(TINY_CLASSIFIER_CONFIG).learn_increment(scenario.new_train)


class TestEWC:
    def test_fisher_estimated_after_base(self, scenario):
        learner = EWCBaseline(TINY_CLASSIFIER_CONFIG, seed=0, fisher_samples=32)
        learner.fit_base(scenario.old_train, scenario.old_validation)
        assert learner._fisher
        assert all(np.all(values >= 0) for values in learner._fisher.values())

    def test_ewc_penalty_reduces_forgetting_vs_finetune(self, scenario):
        finetune = FineTuneBaseline(TINY_CLASSIFIER_CONFIG, seed=0)
        finetune.fit_base(scenario.old_train, scenario.old_validation)
        finetune.learn_increment(scenario.new_train)

        ewc = EWCBaseline(TINY_CLASSIFIER_CONFIG, seed=0, ewc_lambda=500.0, fisher_samples=64)
        ewc.fit_base(scenario.old_train, scenario.old_validation)
        ewc.learn_increment(scenario.new_train)

        finetune_old = old_class_accuracy(
            scenario.test.labels, finetune.predict(scenario.test.features), scenario.old_classes
        )
        ewc_old = old_class_accuracy(
            scenario.test.labels, ewc.predict(scenario.test.features), scenario.old_classes
        )
        assert ewc_old >= finetune_old

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EWCBaseline(TINY_CLASSIFIER_CONFIG, ewc_lambda=-1.0)
        with pytest.raises(ValueError):
            EWCBaseline(TINY_CLASSIFIER_CONFIG, fisher_samples=0)


class TestJointTraining:
    def test_joint_is_strong_on_all_classes(self, scenario):
        learner = JointTrainingBaseline(TINY_CLASSIFIER_CONFIG, seed=0)
        learner.fit_base(scenario.old_train, scenario.old_validation)
        learner.learn_increment(scenario.new_train)
        predictions = learner.predict(scenario.test.features)
        old_acc = old_class_accuracy(scenario.test.labels, predictions, scenario.old_classes)
        new_acc = new_class_accuracy(scenario.test.labels, predictions, scenario.new_classes)
        # Run overlaps heavily with Walk by construction, so the new-class bar
        # is lower than the old-class one even for the joint upper bound.
        assert old_acc > 0.6 and new_acc > 0.35
        assert learner.evaluate(scenario.test) > 0.6

    def test_increment_before_fit_raises(self, scenario):
        with pytest.raises(NotFittedError):
            JointTrainingBaseline(TINY_CLASSIFIER_CONFIG).learn_increment(scenario.new_train)
