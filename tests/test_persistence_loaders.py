"""Tests for PILOTE checkpointing and the file-based dataset loaders."""

import numpy as np
import pytest

from repro.core.persistence import load_pilote, save_pilote
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.data.loaders import (
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)
from repro.exceptions import DataError, NotFittedError, SerializationError
from repro.utils.serialization import save_npz_state


class TestPilotePersistence:
    def test_round_trip_preserves_predictions(self, incremented_pilote, run_scenario, tmp_path):
        path = save_pilote(incremented_pilote, tmp_path / "learner")
        restored = load_pilote(path)
        original = incremented_pilote.predict(run_scenario.test.features)
        recovered = restored.predict(run_scenario.test.features)
        assert np.array_equal(original, recovered)

    def test_round_trip_preserves_bookkeeping(self, incremented_pilote, tmp_path):
        path = save_pilote(incremented_pilote, tmp_path / "learner")
        restored = load_pilote(path)
        assert restored.classes_ == incremented_pilote.classes_
        assert restored.old_classes == incremented_pilote.old_classes
        assert restored.new_classes == incremented_pilote.new_classes
        assert restored.exemplars.classes == incremented_pilote.exemplars.classes
        assert restored.config.alpha == incremented_pilote.config.alpha

    def test_restored_learner_can_keep_learning(self, pretrained_pilote, run_scenario, tmp_path):
        path = save_pilote(pretrained_pilote, tmp_path / "pretrained")
        restored = load_pilote(path)
        restored.learn_new_classes(run_scenario.new_train, run_scenario.new_validation)
        assert restored.evaluate(run_scenario.test) > 0.5

    def test_saving_untrained_learner_raises(self, tiny_config, tmp_path):
        with pytest.raises(NotFittedError):
            save_pilote(PILOTE(tiny_config), tmp_path / "x")

    def test_loading_non_checkpoint_raises(self, tmp_path):
        path = save_npz_state(tmp_path / "plain", {"a": np.ones(3)})
        with pytest.raises(SerializationError):
            load_pilote(path)


def _toy_dataset():
    rng = np.random.default_rng(0)
    return HARDataset(
        features=rng.normal(size=(20, 4)),
        labels=np.array([0] * 10 + [1] * 10),
        label_names={0: "Walk", 1: "Run"},
    )


class TestNpzLoader:
    def test_round_trip(self, tmp_path):
        dataset = _toy_dataset()
        path = save_dataset_npz(dataset, tmp_path / "data")
        loaded = load_dataset_npz(path)
        assert np.allclose(loaded.features, dataset.features)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.label_names == dataset.label_names

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset_npz(tmp_path / "nothing.npz")

    def test_archive_without_required_arrays_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(DataError):
            load_dataset_npz(path)


class TestCsvLoader:
    def test_round_trip(self, tmp_path):
        dataset = _toy_dataset()
        path = save_dataset_csv(dataset, tmp_path / "data.csv")
        loaded = load_dataset_csv(path)
        assert np.allclose(loaded.features, dataset.features, atol=1e-9)
        assert np.array_equal(loaded.labels, dataset.labels)

    def test_named_labels_are_mapped(self, tmp_path):
        path = tmp_path / "named.csv"
        path.write_text("a,b,label\n1.0,2.0,Walk\n3.0,4.0,Run\n")
        loaded = load_dataset_csv(path, label_names={0: "Walk", 1: "Run"})
        assert loaded.labels.tolist() == [0, 1]
        assert loaded.features.shape == (2, 2)

    def test_feature_column_selection(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("a,b,c,label\n1,2,3,0\n4,5,6,1\n")
        loaded = load_dataset_csv(path, feature_columns=["a", "c"])
        assert loaded.features.shape == (2, 2)
        assert np.allclose(loaded.features[0], [1.0, 3.0])

    def test_missing_label_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataError):
            load_dataset_csv(path)

    def test_unknown_label_name_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\n1,Fly\n")
        with pytest.raises(DataError):
            load_dataset_csv(path)

    def test_non_numeric_feature_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\noops,0\n")
        with pytest.raises(DataError):
            load_dataset_csv(path)

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,label\n")
        with pytest.raises(DataError):
            load_dataset_csv(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset_csv(tmp_path / "nothing.csv")
