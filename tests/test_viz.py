"""Tests for PCA projection, ASCII plotting and CSV export."""

import csv

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.viz.ascii import ascii_bar_chart, ascii_line_plot, ascii_scatter
from repro.viz.export import export_series_csv, export_table_csv
from repro.viz.projection import pca_project, project_embeddings_2d


class TestPCA:
    def test_projection_shape_and_variance_order(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 3)) * np.array([10.0, 1.0, 0.1])
        projected, ratio = pca_project(data, n_components=2)
        assert projected.shape == (100, 2)
        assert ratio[0] > ratio[1]
        assert ratio.sum() <= 1.0 + 1e-9

    def test_first_component_captures_dominant_direction(self):
        rng = np.random.default_rng(1)
        data = np.zeros((50, 4))
        data[:, 2] = rng.normal(0, 5.0, size=50)
        projected, ratio = pca_project(data + rng.normal(0, 0.01, size=data.shape), 1)
        assert ratio[0] > 0.95
        assert projected.std() > 1.0

    def test_invalid_arguments(self):
        with pytest.raises(DataError):
            pca_project(np.zeros(5))
        with pytest.raises(DataError):
            pca_project(np.zeros((5, 2)), n_components=3)

    def test_project_embeddings_2d_groups_by_class(self):
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(30, 6))
        labels = np.array([0] * 10 + [1] * 20)
        groups = project_embeddings_2d(embeddings, labels)
        assert set(groups) == {0, 1}
        assert groups[0].shape == (10, 2)
        assert groups[1].shape == (20, 2)

    def test_project_embeddings_label_mismatch(self):
        with pytest.raises(DataError):
            project_embeddings_2d(np.zeros((5, 3)), np.zeros(4))


class TestAsciiPlots:
    def test_line_plot_contains_series_markers_and_legend(self):
        text = ascii_line_plot(
            [1, 2, 3], {"pilote": [0.9, 0.92, 0.95], "re-trained": [0.85, 0.9, 0.91]}
        )
        assert "pilote" in text and "re-trained" in text
        assert "o" in text and "x" in text

    def test_line_plot_title(self):
        text = ascii_line_plot([0, 1], {"a": [1.0, 2.0]}, title="accuracy curve")
        assert text.startswith("accuracy curve")

    def test_line_plot_constant_series_does_not_crash(self):
        assert ascii_line_plot([1, 2], {"flat": [0.5, 0.5]})

    def test_line_plot_length_mismatch(self):
        with pytest.raises(DataError):
            ascii_line_plot([1, 2, 3], {"a": [1.0, 2.0]})

    def test_line_plot_empty_series(self):
        with pytest.raises(DataError):
            ascii_line_plot([1, 2], {})

    def test_scatter_renders_all_classes(self):
        rng = np.random.default_rng(0)
        points = {0: rng.normal(size=(10, 2)), 1: rng.normal(5, 1, size=(10, 2))}
        text = ascii_scatter(points, label_names={0: "Walk", 1: "Run"})
        assert "Walk" in text and "Run" in text

    def test_scatter_requires_2d_points(self):
        with pytest.raises(DataError):
            ascii_scatter({0: np.zeros((5, 3))})

    def test_bar_chart(self):
        text = ascii_bar_chart({"pilote": 0.95, "re-trained": 0.9}, title="accuracies")
        assert "#" in text and "pilote" in text
        with pytest.raises(DataError):
            ascii_bar_chart({})


class TestCsvExport:
    def test_table_round_trip(self, tmp_path):
        rows = [{"method": "pilote", "accuracy": 0.95}, {"method": "re-trained", "accuracy": 0.9}]
        path = export_table_csv(tmp_path / "table.csv", rows)
        with open(path) as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["method"] == "pilote"
        assert float(loaded[1]["accuracy"]) == pytest.approx(0.9)

    def test_table_rejects_empty_and_inconsistent(self, tmp_path):
        with pytest.raises(DataError):
            export_table_csv(tmp_path / "x.csv", [])
        with pytest.raises(DataError):
            export_table_csv(tmp_path / "x.csv", [{"a": 1}, {"b": 2}])

    def test_series_export(self, tmp_path):
        path = export_series_csv(
            tmp_path / "series.csv",
            [10, 20],
            {"pilote": [0.9, 0.95], "re-trained": [0.8, 0.9]},
            x_name="exemplars",
        )
        with open(path) as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["exemplars"] == "10"
        assert float(loaded[1]["pilote"]) == pytest.approx(0.95)

    def test_series_length_mismatch(self, tmp_path):
        with pytest.raises(DataError):
            export_series_csv(tmp_path / "x.csv", [1, 2], {"a": [1.0]})
