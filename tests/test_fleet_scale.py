"""Million-device fleet machinery: snapshot deltas, pooled regions, delta checkpoints.

Covers the hierarchical coordinator stack end to end at test scale:

* ``EngineStateSnapshot.diff``/``apply_delta`` round-trips bit-exactly, a
  stale base raises the typed fallback error, and a no-op increment (the
  support set rebuilt under an unchanged model) produces an *empty* delta;
* ``PILOTE.refine_prototype`` — the cheap single-class increment that makes
  deltas small — updates exactly one prototype and bumps the state version;
* ``FleetCoordinator.device()`` resolves through the id index (including
  after ``replace_device``);
* ``HierarchicalFleetCoordinator`` serves a small fleet bit-identically to
  the flat coordinator, pools undrifted devices behind region lanes, and
  weights accuracy by multiplicity;
* ``CheckpointStore.save(delta=True)`` restores exactly, including through
  delta chains and after LRU eviction consolidates a delta's base away;
* the process executor ships deltas (not full snapshots) for an
  already-shipped lane whose state version bumped.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pilote import PILOTE
from repro.edge.device import DEVICE_PROFILES, DeviceProfile, EdgeDevice
from repro.edge.inference import EngineSnapshotDelta, EngineStateSnapshot
from repro.edge.transfer import package_for_edge
from repro.exceptions import (
    ConfigurationError,
    DataError,
    SnapshotMismatchError,
    StaleSnapshotError,
)
from repro.fleet import (
    CheckpointStore,
    FleetCoordinator,
    FleetDevice,
    HierarchicalFleetCoordinator,
)
from repro.serving import PredictRequest, serve

N_FEATURES = 20
CONFIG = PiloteConfig(hidden_dims=(32, 16), embedding_dim=8, cache_size=200, seed=0)

SIM_NODE = DeviceProfile(
    "sim-node", storage_bytes=256 * 2**20, memory_bytes=2**30, relative_compute=1.0
)


def make_serving_learner(n_classes: int = 4, per_class: int = 25) -> PILOTE:
    """A deployed-looking learner without gradient training (fast, seeded)."""
    rng = np.random.default_rng(0)
    learner = PILOTE(CONFIG, seed=0)
    learner.model = EmbeddingNetwork(N_FEATURES, config=CONFIG, rng=0)
    learner.model.eval()
    learner._old_classes = list(range(n_classes))
    for class_id in range(n_classes):
        learner.exemplars.set_exemplars(
            class_id, rng.normal(size=(per_class, N_FEATURES)) + class_id
        )
    learner._refresh_prototypes()
    return learner


@pytest.fixture()
def learner() -> PILOTE:
    return make_serving_learner()


@pytest.fixture()
def windows() -> np.ndarray:
    return np.random.default_rng(9).normal(size=(12, N_FEATURES))


# ---------------------------------------------------------------------- #
# snapshot deltas
# ---------------------------------------------------------------------- #
class TestSnapshotDelta:
    def test_diff_apply_roundtrip_bit_exact(self, learner):
        base = learner.inference_engine().state_snapshot()
        rng = np.random.default_rng(1)
        learner.refine_prototype(2, rng.normal(size=(5, N_FEATURES)) + 2)
        target = learner.inference_engine().state_snapshot()

        delta = target.diff(base)
        assert isinstance(delta, EngineSnapshotDelta)
        assert delta.base_version == base.state_version
        assert delta.state_version == target.state_version
        assert delta.n_changed == 1  # exactly the refined class moved
        assert not delta.model_updates  # prototype-only increment
        assert delta.nbytes < target.nbytes / 10

        rebuilt = target_from = base.apply_delta(delta)
        assert isinstance(target_from, EngineStateSnapshot)
        assert np.array_equal(rebuilt.prototypes, target.prototypes)
        assert np.array_equal(rebuilt.class_ids, target.class_ids)
        for key, value in target.model_state.items():
            assert np.array_equal(rebuilt.model_state[key], value)
        assert rebuilt.state_version == target.state_version

    def test_noop_increment_ships_zero_rows(self, learner):
        """Recomputing prototypes from unchanged exemplars bumps the version
        but moves no values — the delta must be empty."""
        base = learner.inference_engine().state_snapshot()
        learner._refresh_prototypes()  # deterministic: same exemplars in, same means out
        bumped = learner.inference_engine().state_snapshot()
        assert bumped.state_version > base.state_version

        delta = bumped.diff(base)
        assert delta.n_changed == 0
        assert not delta.model_updates
        rebuilt = base.apply_delta(delta)
        assert np.array_equal(rebuilt.prototypes, bumped.prototypes)

    def test_stale_base_raises_typed_error(self, learner):
        rng = np.random.default_rng(2)
        snap0 = learner.inference_engine().state_snapshot()
        learner.refine_prototype(0, rng.normal(size=(3, N_FEATURES)))
        snap1 = learner.inference_engine().state_snapshot()
        learner.refine_prototype(1, rng.normal(size=(3, N_FEATURES)) + 1)
        snap2 = learner.inference_engine().state_snapshot()

        delta = snap2.diff(snap1)
        with pytest.raises(StaleSnapshotError):
            snap0.apply_delta(delta)  # wrong base version -> full re-ship

    def test_incompatible_snapshots_refuse_to_diff(self, learner):
        import dataclasses

        snap = learner.inference_engine().state_snapshot()
        other_metric = dataclasses.replace(snap, metric="manhattan")
        with pytest.raises(SnapshotMismatchError):
            snap.diff(other_metric)
        other_dtype = dataclasses.replace(snap, compute_dtype="float32")
        with pytest.raises(SnapshotMismatchError):
            snap.diff(other_dtype)

    def test_new_class_rows_travel_in_delta(self, pilote_copy, run_scenario):
        base = pilote_copy.inference_engine().state_snapshot()
        pilote_copy.learn_new_classes(
            run_scenario.new_train, run_scenario.new_validation
        )
        target = pilote_copy.inference_engine().state_snapshot()
        delta = target.diff(base)
        # A real increment retrains the backbone: every prototype moves and
        # the model updates travel too — but apply is still bit-exact.
        assert delta.n_changed == target.prototypes.shape[0]
        rebuilt = base.apply_delta(delta)
        assert np.array_equal(rebuilt.prototypes, target.prototypes)
        assert np.array_equal(rebuilt.class_ids, target.class_ids)


class TestRefinePrototype:
    def test_moves_one_prototype_and_bumps_version(self, learner):
        rng = np.random.default_rng(3)
        before = {c: learner.prototypes.get(c).copy() for c in learner.prototypes.classes}
        version = learner.state_version
        updated = learner.refine_prototype(1, rng.normal(size=(6, N_FEATURES)) + 1)
        assert learner.state_version == version + 1
        assert not np.array_equal(updated, before[1])
        for class_id, old in before.items():
            if class_id != 1:
                assert np.array_equal(learner.prototypes.get(class_id), old)

    def test_single_row_accepted(self, learner):
        row = np.random.default_rng(4).normal(size=N_FEATURES)
        learner.refine_prototype(0, row)  # 1-D input reshaped to (1, d)

    def test_unknown_class_rejected(self, learner):
        with pytest.raises(DataError):
            learner.refine_prototype(99, np.zeros((2, N_FEATURES)))


# ---------------------------------------------------------------------- #
# flat coordinator: id index
# ---------------------------------------------------------------------- #
class TestDeviceIndex:
    def test_lookup_and_missing(self, learner):
        fleet = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=0)
        fleet.provision(5)
        assert fleet.device(3).device_id == 3
        with pytest.raises(ConfigurationError):
            fleet.device(17)

    def test_replace_device_updates_index(self, learner):
        fleet = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=0)
        fleet.provision(3)
        replacement = FleetDevice(1, EdgeDevice(SIM_NODE))
        fleet.replace_device(1, replacement)
        assert fleet.device(1) is replacement
        # Untouched ids still resolve after the swap.
        assert fleet.device(0).device_id == 0
        assert fleet.device(2).device_id == 2

    def test_index_survives_external_list_surgery(self, learner):
        fleet = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=0)
        fleet.provision(3)
        fleet.devices.insert(0, FleetDevice(100, EdgeDevice(SIM_NODE)))  # stale index
        assert fleet.device(100).device_id == 100
        assert fleet.device(2).device_id == 2


# ---------------------------------------------------------------------- #
# hierarchical coordinator
# ---------------------------------------------------------------------- #
class TestHierarchicalFleet:
    def _package(self, learner):
        return package_for_edge(learner)

    def test_small_fleet_bit_exact_with_flat(self, learner, windows):
        package = self._package(learner)
        flat = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=7)
        flat.provision(6)
        flat.deploy(package)
        tree = HierarchicalFleetCoordinator(
            CONFIG, profiles=(SIM_NODE,), seed=7, n_regions=3
        )
        tree.provision(6)
        tree.deploy(package)
        for device_id in range(6):
            tree.device(device_id)  # materialise everyone pre-freeze

        flat_client = serve(flat, seed=11)
        tree_client = serve(tree, seed=11)
        try:
            rng = np.random.default_rng(5)
            flat_pending, tree_pending = [], []
            for user in range(30):
                features = rng.normal(size=(3, N_FEATURES))
                flat_pending.append(
                    flat_client.submit(PredictRequest(user_id=user, features=features))
                )
                tree_pending.append(
                    tree_client.submit(PredictRequest(user_id=user, features=features))
                )
            flat_client.drain()
            tree_client.drain()
            for a, b in zip(flat_pending, tree_pending):
                assert a.result().device_id == b.result().device_id
                assert np.array_equal(a.result().class_ids, b.result().class_ids)
        finally:
            flat_client.close()
            tree_client.close()

    def test_pooled_serving_and_weighted_accuracy(self, learner, har_dataset):
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=4)
        tree.provision(100)
        tree.deploy(package)
        assert len(tree) == 100
        assert tree.n_regions == 4
        # Nobody drifted: four pooled lanes carry the whole fleet.
        lanes = tree.serving_lanes()
        assert len(lanes) == 4
        assert all(lane.device_id < 0 for lane in lanes)
        mapping = tree.lane_map()
        assert mapping.shape == (100,)
        assert set(np.unique(mapping)) == {0, 1, 2, 3}

        dataset = har_dataset.subsample(40, rng=np.random.default_rng(0))
        probe_features = dataset.features[:, :N_FEATURES]
        from repro.data.dataset import HARDataset

        probe = HARDataset(probe_features, dataset.labels % 4)
        report = tree.accuracy_report(probe)
        assert report.n_devices == 100  # weights carry the multiplicity
        assert len(report.per_device) == 4

    def test_materialised_devices_drift_and_weigh_individually(self, learner):
        rng = np.random.default_rng(6)
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=2)
        tree.provision(10)
        tree.deploy(package)
        drifted = tree.device(3)
        drifted.learner.refine_prototype(0, rng.normal(size=(4, N_FEATURES)))
        region = tree.region_of(3)
        assert region.n_pooled == 4
        lanes = tree.serving_lanes()
        assert len(lanes) == 3  # 2 region lanes + device 3
        assert tree.lane_map()[3] == 2  # drifted device routes to its own lane
        assert tree.lane_map()[4] == region.region_id

    def test_provision_is_once_only_and_freeze_is_enforced(self, learner):
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=2)
        tree.provision(8)
        with pytest.raises(ConfigurationError):
            tree.provision(8)
        tree.deploy(package)
        tree.device(0)
        tree.serving_lanes()  # freezes materialisation
        tree.device(0)  # already materialised: still fine
        with pytest.raises(ConfigurationError):
            tree.device(5)

    def test_staged_rollout_over_regions(self, learner):
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=4)
        tree.provision(16)
        tree.deploy(package, rollout="staged")
        deployed = [r.lane.is_deployed for r in tree.regions]
        assert any(deployed) and not all(deployed)
        while tree.advance_rollout():
            pass
        assert all(r.lane.is_deployed for r in tree.regions)
        assert tree.cohort_of(0) is not None
        with pytest.raises(ConfigurationError):
            tree.rollout_report()

    def test_user_routing_rollouts_rejected(self, learner):
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=4)
        tree.provision(16)
        with pytest.raises(ConfigurationError):
            tree.deploy(package, rollout="ab")

    def test_deploy_ships_once_per_region(self, learner):
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=5)
        tree.provision(500)
        tree.deploy(package)
        assert tree.transfers.deploy_shipments == 5
        assert tree.transfers.deploy_bytes == 5 * package.total_bytes

        flat = FleetCoordinator(CONFIG, seed=7)
        flat.provision(20)
        flat.deploy(package)
        assert flat.transfers.deploy_shipments == 20

    def test_replace_device_swaps_materialised_lane(self, learner, windows):
        package = self._package(learner)
        tree = HierarchicalFleetCoordinator(CONFIG, seed=7, n_regions=2)
        tree.provision(8)
        tree.deploy(package)
        original = tree.device(2)
        lanes = tree.serving_lanes()
        replacement = FleetDevice(2, EdgeDevice(DEVICE_PROFILES["smartphone"]))
        replacement.deploy(package, CONFIG, seed=0)
        tree.replace_device(2, replacement)
        assert tree.device(2) is replacement
        assert replacement in lanes and original not in lanes


# ---------------------------------------------------------------------- #
# delta checkpoints
# ---------------------------------------------------------------------- #
class TestDeltaCheckpoints:
    def _device(self, learner):
        device = FleetDevice(0, EdgeDevice(SIM_NODE))
        device.adopt(learner)
        return device

    def test_delta_save_restores_bit_exact(self, learner, windows, tmp_path):
        device = self._device(learner)
        store = CheckpointStore(tmp_path)
        full = store.save(device)
        learner.refine_prototype(1, np.random.default_rng(1).normal(size=(4, N_FEATURES)))
        delta = store.save(device, delta=True)
        assert delta.base_id == full.checkpoint_id
        assert delta.nbytes < full.nbytes / 10
        restored = store.restore(delta)
        assert np.array_equal(device.infer(windows), restored.infer(windows))

    def test_delta_without_base_degrades_to_full(self, learner, tmp_path):
        device = self._device(learner)
        store = CheckpointStore(tmp_path)
        checkpoint = store.save(device, delta=True)
        assert checkpoint.base_id is None

    def test_delta_chain_restores(self, learner, windows, tmp_path):
        rng = np.random.default_rng(2)
        device = self._device(learner)
        store = CheckpointStore(tmp_path)
        store.save(device)
        learner.refine_prototype(0, rng.normal(size=(3, N_FEATURES)))
        first = store.save(device, delta=True)
        learner.refine_prototype(2, rng.normal(size=(3, N_FEATURES)) + 2)
        second = store.save(device, delta=True)
        assert second.base_id == first.checkpoint_id
        restored = store.restore(second)
        assert np.array_equal(device.infer(windows), restored.infer(windows))

    def test_eviction_consolidates_dependent_deltas(self, learner, windows, tmp_path):
        rng = np.random.default_rng(3)
        device = self._device(learner)
        probe_store = CheckpointStore(tmp_path / "probe")
        full_nbytes = probe_store.save(device).nbytes

        store = CheckpointStore(tmp_path / "real", budget_bytes=int(full_nbytes * 2.4))
        store.save(device)  # id 0: the delta's base
        learner.refine_prototype(1, rng.normal(size=(3, N_FEATURES)) + 1)
        delta = store.save(device, delta=True)  # id 1
        expected = device.infer(windows)
        learner.refine_prototype(0, rng.normal(size=(3, N_FEATURES)))
        store.save(device)  # id 2
        store.restore(delta)  # touch for recency: evict id 0, then id 2
        learner.refine_prototype(2, rng.normal(size=(3, N_FEATURES)) + 2)
        store.save(device)  # id 3: pushes over budget
        survivors = {c.checkpoint_id: c for c in store.checkpoints()}
        assert 0 not in survivors
        assert survivors[delta.checkpoint_id].base_id is None  # consolidated
        restored = store.restore(survivors[delta.checkpoint_id])
        assert np.array_equal(expected, restored.infer(windows))

    def test_bytes_written_accounts_deltas(self, learner, tmp_path):
        device = self._device(learner)
        store = CheckpointStore(tmp_path)
        full = store.save(device)
        written_after_full = store.bytes_written
        assert written_after_full == full.nbytes
        learner.refine_prototype(1, np.random.default_rng(4).normal(size=(2, N_FEATURES)))
        delta = store.save(device, delta=True)
        assert store.bytes_written == written_after_full + delta.nbytes


# ---------------------------------------------------------------------- #
# process executor delta shipping
# ---------------------------------------------------------------------- #
class TestExecutorDeltaShipping:
    def test_version_bump_ships_delta_not_full(self, learner, windows):
        client = serve(learner, executor="process", workers=1)
        try:
            pending = client.submit(PredictRequest(user_id=1, features=windows))
            client.drain()
            pending.result()
            executor = client.scheduler.executor
            assert executor.sync_stats()["full_syncs"] == 1
            assert executor.sync_stats()["delta_syncs"] == 0

            learner.refine_prototype(
                0, np.random.default_rng(5).normal(size=(3, N_FEATURES))
            )
            after = client.submit(PredictRequest(user_id=1, features=windows))
            client.drain()
            stats = executor.sync_stats()
            assert stats["full_syncs"] == 1
            assert stats["delta_syncs"] == 1
            # Delta-served predictions match the live engine bit for bit.
            local = learner.inference_engine()
            assert np.array_equal(after.result().class_ids, local.predict(windows))
        finally:
            client.close()
        # Telemetry survives close() so reports can read it afterwards.
        assert client.scheduler.executor.sync_stats()["delta_syncs"] == 1
