"""Tests for the synthetic HAR data generator."""

import numpy as np
import pytest

from repro.data.activities import Activity
from repro.data.sensors import default_sensor_suite
from repro.data.synthetic import (
    ActivitySignature,
    SyntheticSensorGenerator,
    default_signatures,
    make_feature_dataset,
)
from repro.exceptions import ConfigurationError, DataError


class TestSignatures:
    def test_all_activities_have_signatures(self):
        signatures = default_signatures()
        assert set(signatures) == set(Activity)

    def test_run_and_walk_are_adjacent_bands(self):
        signatures = default_signatures()
        walk, run = signatures[Activity.WALK], signatures[Activity.RUN]
        # Run is faster and stronger than Walk, but their per-window
        # distributions overlap (within roughly two standard deviations).
        assert run.locomotion_hz > walk.locomotion_hz
        assert run.accel_amplitude > walk.accel_amplitude
        gap = run.locomotion_hz - walk.locomotion_hz
        assert gap < 2 * (run.locomotion_hz_std + walk.locomotion_hz_std)

    def test_still_is_low_energy(self):
        signatures = default_signatures()
        assert signatures[Activity.STILL].accel_amplitude < 0.2


class TestGenerator:
    def test_window_shapes(self):
        generator = SyntheticSensorGenerator(seed=0)
        windows = generator.generate_windows(Activity.WALK, 7)
        suite = default_sensor_suite()
        assert windows.shape == (7, suite.window_length, suite.n_channels)

    def test_reproducible_with_seed(self):
        first = SyntheticSensorGenerator(seed=3).generate_windows(Activity.RUN, 4)
        second = SyntheticSensorGenerator(seed=3).generate_windows(Activity.RUN, 4)
        assert np.allclose(first, second)

    def test_different_activities_differ(self):
        generator = SyntheticSensorGenerator(seed=0)
        still = generator.generate_windows(Activity.STILL, 20)
        run = generator.generate_windows(Activity.RUN, 20)
        # Run has far more accelerometer energy than Still.
        assert run[:, :, 0].var() > 10 * still[:, :, 0].var()

    def test_generate_dataset_counts_and_labels(self):
        generator = SyntheticSensorGenerator(seed=1)
        windows, labels = generator.generate_dataset({Activity.RUN: 5, Activity.WALK: 3})
        assert windows.shape[0] == 8
        assert sorted(np.unique(labels).tolist()) == [int(Activity.RUN), int(Activity.WALK)]

    def test_generate_dataset_int_shortcut(self):
        generator = SyntheticSensorGenerator(seed=1)
        windows, labels = generator.generate_dataset(2)
        assert windows.shape[0] == 2 * len(Activity)

    def test_invalid_arguments(self):
        generator = SyntheticSensorGenerator(seed=0)
        with pytest.raises(DataError):
            generator.generate_windows(Activity.RUN, 0)
        with pytest.raises(ConfigurationError):
            SyntheticSensorGenerator(n_users=0)


class TestMakeFeatureDataset:
    def test_shapes_and_labels(self):
        dataset = make_feature_dataset(samples_per_class=12, seed=0)
        assert dataset.features.shape == (60, 80)
        assert set(dataset.classes.tolist()) == {int(a) for a in Activity}
        assert dataset.label_names[int(Activity.RUN)] == "Run"

    def test_normalized_features(self):
        dataset = make_feature_dataset(samples_per_class=30, seed=0, normalize=True)
        assert abs(dataset.features.mean()) < 0.1

    def test_unnormalized_features(self):
        dataset = make_feature_dataset(samples_per_class=10, seed=0, normalize=False)
        assert dataset.features.shape == (50, 80)

    def test_subset_of_activities(self):
        dataset = make_feature_dataset(
            samples_per_class=10, seed=0, activities=[Activity.RUN, Activity.WALK]
        )
        assert set(dataset.classes.tolist()) == {int(Activity.RUN), int(Activity.WALK)}

    def test_classes_are_separable_by_a_simple_rule(self):
        """A nearest-centroid classifier in feature space should beat chance easily."""
        dataset = make_feature_dataset(samples_per_class=60, seed=2)
        rng = np.random.default_rng(0)
        order = rng.permutation(dataset.n_samples)
        half = dataset.n_samples // 2
        train_idx, test_idx = order[:half], order[half:]
        centroids = {}
        for class_id in dataset.classes:
            mask = dataset.labels[train_idx] == class_id
            centroids[class_id] = dataset.features[train_idx][mask].mean(axis=0)
        prototypes = np.stack([centroids[c] for c in dataset.classes])
        distances = np.linalg.norm(
            dataset.features[test_idx][:, None, :] - prototypes[None, :, :], axis=2
        )
        predictions = dataset.classes[np.argmin(distances, axis=1)]
        accuracy = (predictions == dataset.labels[test_idx]).mean()
        assert accuracy > 0.6  # well above the 0.2 chance level

    def test_run_walk_are_the_hard_pair(self):
        """Run and Walk centroids should be closer than Run and Still centroids."""
        dataset = make_feature_dataset(samples_per_class=60, seed=3)
        centroid = {
            int(c): dataset.features[dataset.labels == c].mean(axis=0) for c in dataset.classes
        }
        run_walk = np.linalg.norm(centroid[int(Activity.RUN)] - centroid[int(Activity.WALK)])
        run_still = np.linalg.norm(centroid[int(Activity.RUN)] - centroid[int(Activity.STILL)])
        run_drive = np.linalg.norm(centroid[int(Activity.RUN)] - centroid[int(Activity.DRIVE)])
        assert run_walk < run_still
        assert run_walk < run_drive
