"""Tests for the network front door (:mod:`repro.server`).

The contract under test (ISSUE 7): the wire format round-trips and rejects
framing violations typed; ``PendingResult.add_done_callback`` fires exactly
once even when registered after completion (including the admission-rejected
``_RejectedResult`` path); a closed serving client rejects new submissions
and fails — never drops — still-pending futures; ``RoutingReport`` exports
to/from JSON-able dicts; the asyncio bridge resolves native futures without
polling; the socket server answers, reports stats, and on graceful shutdown
settles every received request exactly once (``received == answered +
failed``) across seeds.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.config import PiloteConfig
from repro.exceptions import (
    ClientClosedError,
    DeadlineExceededError,
    InvalidRequestError,
    ServingError,
    WireProtocolError,
)
from repro.fleet import TrafficGenerator, WorkloadSpec
from repro.fleet.router import DeviceStats, RoutingReport
from repro.server import (
    AsyncConnection,
    AsyncServingClient,
    RequestSpec,
    ServerStats,
    ServingServer,
    run_load,
    wire,
)
from repro.server.simulation import make_serving_learner
from repro.serving import PredictRequest, serve

N_FEATURES = 24

SERVER_CONFIG = PiloteConfig(
    hidden_dims=(32, 16), embedding_dim=8, cache_size=100, seed=0
)


def make_learner(seed=3):
    return make_serving_learner(
        SERVER_CONFIG, n_classes=3, per_class=40, n_features=N_FEATURES, seed=seed
    )


def make_client(**serve_options):
    return serve(make_learner(), **serve_options)


def features(n_windows=2, seed=0):
    return (
        np.random.default_rng(seed)
        .normal(size=(n_windows, N_FEATURES))
        .astype(np.float32)
    )


def read_one(*frames):
    """Read one frame from raw bytes as a peer would off the socket."""

    async def _read():
        reader = asyncio.StreamReader()
        for frame in frames:
            reader.feed_data(frame)
        reader.feed_eof()
        return await wire.read_frame(reader)

    return asyncio.run(_read())


# ---------------------------------------------------------------------- #
class TestWireFormat:
    @pytest.mark.parametrize("codec", wire.available_codecs())
    def test_predict_round_trip(self, codec):
        sent = features(3, seed=1)
        header, payload = wire.predict_frame(
            7, 11, sent, deadline_ms=50.0, metadata={"tag": "a"}
        )
        got = read_one(wire.encode_frame(header, payload, codec))
        assert got is not None
        request_id, user_id, decoded, deadline_ms, metadata = wire.decode_predict(
            *got
        )
        assert (request_id, user_id) == (7, 11)
        assert deadline_ms == 50.0
        assert metadata == {"tag": "a"}
        np.testing.assert_array_equal(decoded, sent)
        assert decoded.dtype == np.dtype("<f4")

    def test_one_dimensional_features_promote_to_one_window(self):
        header, payload = wire.predict_frame(1, 2, features(1, seed=2)[0])
        assert header["shape"] == [1, N_FEATURES]
        *_, decoded, _, _ = wire.decode_predict(header, payload)
        assert decoded.shape == (1, N_FEATURES)

    def test_response_round_trip(self):
        class_ids = np.array([4, 1, 4], dtype=np.int64)
        header, payload = wire.response_frame(
            9, 3, class_ids, device_id=2, latency_ms=1.5, e2e_ms=2.5,
            deadline_missed=True,
        )
        decoded = wire.decode_response(*read_one(wire.encode_frame(header, payload)))
        assert decoded["request_id"] == 9
        assert decoded["device_id"] == 2
        assert decoded["deadline_missed"] is True
        np.testing.assert_array_equal(decoded["class_ids"], class_ids)

    def test_error_frames_travel_typed_by_name(self):
        header, _ = wire.error_frame(DeadlineExceededError("too late"), 5)
        rebuilt = wire.decode_error(header)
        assert isinstance(rebuilt, DeadlineExceededError)
        assert "too late" in str(rebuilt)
        assert header["request_id"] == 5

    def test_unregistered_errors_degrade_to_the_base_class(self):
        header, _ = wire.error_frame(ValueError("exotic"))
        rebuilt = wire.decode_error(header)
        assert type(rebuilt) is ServingError
        assert "exotic" in str(rebuilt)
        unknown = wire.decode_error({"kind": "error", "error": "NoSuchError"})
        assert type(unknown) is ServingError

    def test_clean_eof_reads_none(self):
        assert read_one() is None

    def test_mid_frame_eof_is_a_framing_error(self):
        frame = wire.encode_frame(*wire.bye_frame())
        with pytest.raises(WireProtocolError):
            read_one(frame[: len(frame) - 1])
        with pytest.raises(WireProtocolError):
            read_one(frame[:3])  # mid-prefix

    def test_oversized_lengths_are_framing_errors(self):
        import struct

        huge_header = struct.pack(
            ">BII", wire.CODEC_JSON, wire.MAX_HEADER_BYTES + 1, 0
        )
        with pytest.raises(WireProtocolError):
            read_one(huge_header)
        huge_payload = struct.pack(
            ">BII", wire.CODEC_JSON, 2, wire.MAX_PAYLOAD_BYTES + 1
        )
        with pytest.raises(WireProtocolError):
            read_one(huge_payload + b"{}")

    def test_garbage_codec_and_non_mapping_headers_are_framing_errors(self):
        import struct

        body = b"[1,2]"
        frame = struct.pack(">BII", wire.CODEC_JSON, len(body), 0) + body
        with pytest.raises(WireProtocolError):
            read_one(frame)
        frame = struct.pack(">BII", 200, 2, 0) + b"{}"
        with pytest.raises(WireProtocolError):
            read_one(frame)

    def test_payload_shape_mismatch_is_a_framing_error(self):
        header, payload = wire.predict_frame(1, 1, features(2))
        header["shape"] = [3, N_FEATURES]
        with pytest.raises(WireProtocolError):
            wire.decode_predict(header, payload)

    def test_request_level_validation_is_invalid_request(self):
        header, payload = wire.predict_frame(1, 1, features(2), deadline_ms=5.0)
        header["deadline_ms"] = -1.0
        with pytest.raises(InvalidRequestError):
            wire.decode_predict(header, payload)
        header, payload = wire.predict_frame(1, 1, features(2))
        header["shape"] = [2]
        with pytest.raises(WireProtocolError, match="malformed|matrix"):
            try:
                wire.decode_predict(header, payload)
            except InvalidRequestError as exc:
                raise WireProtocolError(f"matrix: {exc}")


# ---------------------------------------------------------------------- #
class TestDoneCallbacks:
    """``add_done_callback`` after completion fires immediately, exactly once."""

    def test_callback_after_completion_fires_immediately_once(self):
        client = make_client(executor="serial")
        try:
            pending = client.submit(
                PredictRequest(user_id=1, features=features(), arrival_seconds=0.0)
            )
            client.drain()
            assert pending.done()
            calls = []
            pending.add_done_callback(calls.append)
            assert calls == [pending]
            pending.add_done_callback(calls.append)  # one fire per registration
            assert calls == [pending, pending]
        finally:
            client.close()

    def test_callback_before_completion_fires_once_at_finish(self):
        client = make_client(executor="serial")
        try:
            pending = client.submit(
                PredictRequest(user_id=1, features=features(), arrival_seconds=0.0)
            )
            calls = []
            pending.add_done_callback(calls.append)
            assert calls == []
            client.drain()
            assert calls == [pending]
            client.drain()  # further drains never re-fire
            assert calls == [pending]
        finally:
            client.close()

    def test_rejected_result_callback_fires_inline(self):
        client = make_client(executor="serial")
        try:
            client.submit(
                PredictRequest(user_id=1, features=features(), arrival_seconds=0.0)
            )
            client.drain()
            backlog = client.clock_now()
            assert backlog > 0.0
            rejected = client.submit(
                PredictRequest(
                    user_id=2,
                    features=features(),
                    arrival_seconds=0.0,
                    deadline_seconds=backlog / 2,
                )
            )
            assert rejected.done()
            assert isinstance(rejected.exception(), DeadlineExceededError)
            calls = []
            rejected.add_done_callback(calls.append)
            assert calls == [rejected]
            with pytest.raises(DeadlineExceededError):
                rejected.result()
            assert client.report().total_rejected == 1
        finally:
            client.close()


# ---------------------------------------------------------------------- #
class TestCloseSemantics:
    def test_submit_after_close_raises_typed(self):
        client = make_client(executor="serial")
        client.close()
        assert client.closed
        with pytest.raises(ClientClosedError):
            client.submit(
                PredictRequest(user_id=1, features=features(), arrival_seconds=0.0)
            )

    def test_close_is_idempotent(self):
        client = make_client(executor="serial")
        client.close()
        client.close()
        assert client.closed

    def test_close_fails_pending_futures_typed(self):
        client = make_client(executor="serial")
        pendings = client.submit_many(
            [
                PredictRequest(
                    user_id=i, features=features(seed=i), arrival_seconds=0.0
                )
                for i in range(3)
            ]
        )
        assert all(not pending.done() for pending in pendings)
        client.close()
        for pending in pendings:
            assert pending.done()
            assert isinstance(pending.exception(), ClientClosedError)
            with pytest.raises(ClientClosedError):
                pending.result()
        assert client.report().total_failed == 3


# ---------------------------------------------------------------------- #
class TestReportExport:
    def _served_report(self):
        client = make_client(executor="serial")
        try:
            client.submit_many(
                [
                    PredictRequest(
                        user_id=i, features=features(seed=i), arrival_seconds=0.0
                    )
                    for i in range(4)
                ]
            )
            client.drain()
            return client.report(), client.sync_stats()
        finally:
            client.close()

    def test_to_json_matches_to_dict(self):
        report, _ = self._served_report()
        data = report.to_dict(slo_target_seconds=1.0)
        assert json.loads(report.to_json(slo_target_seconds=1.0)) == data
        assert data["total_requests"] == 4
        assert data["slo_target_seconds"] == 1.0
        assert 0.0 <= data["slo_attainment"] <= 1.0
        assert set(data["deadline_breakdown"]) == {
            "served", "missed", "expired", "failed"
        }

    def test_sync_stats_travel_when_provided(self):
        report, sync_stats = self._served_report()
        assert sync_stats is None  # serial executor ships nothing
        data = report.to_dict(sync_stats={"bytes_shipped": 10, "full_syncs": 1})
        assert data["sync_stats"] == {"bytes_shipped": 10, "full_syncs": 1}
        assert "sync_stats" not in report.to_dict()

    def test_round_trip_preserves_counters(self):
        report, _ = self._served_report()
        rebuilt = RoutingReport.from_dict(report.to_dict())
        assert rebuilt.total_requests == report.total_requests
        assert rebuilt.total_windows == report.total_windows
        assert rebuilt.clock == report.clock
        assert sorted(rebuilt.per_device) == sorted(report.per_device)
        for device_id, stats in report.per_device.items():
            assert rebuilt.per_device[device_id].requests == stats.requests
            assert rebuilt.per_device[device_id].windows == stats.windows

    def test_device_stats_dict_uses_native_scalars(self):
        report, _ = self._served_report()
        payload = json.dumps(
            {str(k): v.to_dict() for k, v in report.per_device.items()}
        )
        rebuilt = {
            int(k): DeviceStats.from_dict(v)
            for k, v in json.loads(payload).items()
        }
        assert rebuilt.keys() == report.per_device.keys()


# ---------------------------------------------------------------------- #
class TestAsyncBridge:
    def test_round_trip_and_drain(self):
        async def scenario():
            bridge = AsyncServingClient(make_client(executor="serial"))
            try:
                futures = [
                    bridge.submit_spec(
                        RequestSpec(i, features(seed=i), request_id=i)
                    )
                    for i in range(5)
                ]
                responses = await asyncio.gather(*futures)
                await bridge.drain()
                assert bridge.inflight == 0
                return responses
            finally:
                await bridge.aclose()

        responses = asyncio.run(scenario())
        assert len(responses) == 5
        for i, response in enumerate(responses):
            assert response.user_id == i
            assert response.class_ids.shape == (2,)

    def test_per_request_failure_does_not_poison_the_batch(self):
        async def scenario():
            bridge = AsyncServingClient(make_client(executor="serial"))
            try:
                good = bridge.submit_spec(RequestSpec(1, features(seed=1)))
                bad = bridge.submit_spec(
                    RequestSpec(2, np.empty((0, N_FEATURES), dtype=np.float32))
                )
                response = await good
                with pytest.raises(ServingError):
                    await bad
                return response
            finally:
                await bridge.aclose()

        assert asyncio.run(scenario()).user_id == 1

    def test_submit_after_aclose_raises_typed(self):
        async def scenario():
            bridge = AsyncServingClient(make_client(executor="serial"))
            await bridge.aclose()
            await bridge.aclose()  # idempotent
            with pytest.raises(ClientClosedError):
                bridge.submit_spec(RequestSpec(1, features()))

        asyncio.run(scenario())

    def test_report_dict_exports_through_the_bridge(self):
        async def scenario():
            bridge = AsyncServingClient(make_client(executor="serial"))
            try:
                await bridge.submit_spec(RequestSpec(1, features()))
                return await bridge.report_dict(slo_target_seconds=1.0)
            finally:
                await bridge.aclose()

        data = asyncio.run(scenario())
        assert data["total_requests"] == 1
        assert "slo_attainment" in data


# ---------------------------------------------------------------------- #
class TestServingServer:
    def _run(self, scenario, **serve_options):
        async def wrapped():
            server = ServingServer(
                make_client(**serve_options), slo_target_ms=1000.0
            )
            host, port = await server.start()
            try:
                return await scenario(server, host, port)
            finally:
                await server.stop(grace_seconds=0.5)

        return asyncio.run(wrapped())

    def test_predict_round_trip_over_the_socket(self):
        async def scenario(server, host, port):
            async with await AsyncConnection.open(host, port) as connection:
                response = await connection.predict(3, features(seed=3))
                assert response.user_id == 3
                assert response.class_ids.shape == (2,)
                assert response.e2e_server_ms >= 0.0
            return server.stats

        stats = self._run(scenario, executor="serial")
        assert stats.received == stats.answered + stats.failed == 1

    def test_pipelined_requests_resolve_out_of_order_safely(self):
        async def scenario(server, host, port):
            async with await AsyncConnection.open(host, port) as connection:
                responses = await asyncio.gather(
                    *(
                        connection.predict(i, features(seed=i))
                        for i in range(8)
                    )
                )
            return responses

        responses = self._run(scenario, executor="serial")
        assert [r.user_id for r in responses] == list(range(8))

    def test_invalid_request_comes_back_typed_without_killing_the_connection(self):
        async def scenario(server, host, port):
            async with await AsyncConnection.open(host, port) as connection:
                with pytest.raises(ServingError):
                    await connection.predict(
                        1, np.empty((0, N_FEATURES), dtype=np.float32)
                    )
                follow_up = await connection.predict(2, features(seed=2))
            return follow_up, server.stats

        follow_up, stats = self._run(scenario, executor="serial")
        assert follow_up.user_id == 2
        assert stats.received == stats.answered + stats.failed == 2
        assert stats.failed == 1

    def test_missed_deadline_answers_with_the_miss_flag(self):
        async def scenario(server, host, port):
            async with await AsyncConnection.open(host, port) as connection:
                return await connection.predict(
                    1, features(), deadline_ms=1e-3
                )

        response = self._run(scenario, executor="serial")
        assert response.deadline_missed is True

    def test_stats_endpoint_shares_the_report_export(self):
        async def scenario(server, host, port):
            async with await AsyncConnection.open(host, port) as connection:
                await connection.predict(1, features())
                return await connection.stats()

        stats = self._run(scenario, executor="serial")
        assert stats["report"]["total_requests"] == 1
        assert stats["server"]["received"] == 1
        assert stats["server"]["slo_target_ms"] == 1000.0
        assert 0.0 <= stats["server"]["slo_attainment"] <= 1.0

    def test_unknown_frame_kind_is_answered_typed(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            await wire.write_frame(writer, {"kind": "nope", "request_id": 5})
            frame = await wire.read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return frame

        header, _ = self._run(scenario, executor="serial")
        assert header["kind"] == "error"
        assert isinstance(wire.decode_error(header), WireProtocolError)
        assert header["request_id"] == 5

    def test_framing_violation_closes_the_connection(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\xff" * 64)
            await writer.drain()
            raw = await reader.read()  # error frame (best effort) then EOF
            writer.close()
            await writer.wait_closed()
            return raw

        raw = self._run(scenario, executor="serial")
        if raw:
            header, _ = read_one(raw)
            assert isinstance(wire.decode_error(header), WireProtocolError)

    def test_stopped_server_rejects_new_connections(self):
        async def scenario():
            server = ServingServer(make_client(executor="serial"))
            host, port = await server.start()
            await server.stop(grace_seconds=0.1)
            await server.stop(grace_seconds=0.1)  # idempotent
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(host, port)

        asyncio.run(scenario())


# ---------------------------------------------------------------------- #
class TestGracefulShutdown:
    """Property: mid-stream shutdown settles every request exactly once."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_request_answered_or_failed_typed_exactly_once(self, seed):
        spec = WorkloadSpec(
            pattern="zipf", n_users=32, requests_per_tick=96, n_ticks=1,
            windows_per_request=2,
        )
        pool = (
            np.random.default_rng(seed)
            .normal(size=(256, N_FEATURES))
            .astype(np.float32)
        )
        requests = TrafficGenerator(pool, spec, seed=seed).requests()

        async def scenario():
            server = ServingServer(make_client(executor="thread", workers=2))
            host, port = await server.start()
            load_task = asyncio.get_running_loop().create_task(
                run_load(
                    host, port, requests,
                    connections=3, window=8, fetch_server_stats=False,
                )
            )
            while server.stats.received < 12:
                await asyncio.sleep(0.001)
            await server.stop(grace_seconds=0.05)
            return await load_task, server.stats

        report, stats = asyncio.run(scenario())
        # Client side: one outcome per sent request, all failures typed.
        assert report.sent == report.answered + report.failed
        assert set(report.failed_by_type) <= set(wire.WIRE_ERRORS)
        # Server side: everything received settled exactly once.
        assert stats.received == stats.answered + stats.failed
        assert stats.received >= 12
        assert set(stats.failed_by_type) <= set(wire.WIRE_ERRORS)


# ---------------------------------------------------------------------- #
class TestLoadReport:
    def test_exactly_once_accounting_and_json_export(self):
        async def scenario():
            server = ServingServer(
                make_client(executor="serial"), slo_target_ms=1000.0
            )
            host, port = await server.start()
            try:
                requests = [
                    PredictRequest(
                        user_id=i, features=features(seed=i), arrival_seconds=0.0
                    )
                    for i in range(10)
                ]
                return await run_load(
                    host, port, requests,
                    connections=2, window=4, slo_target_ms=1000.0,
                )
            finally:
                await server.stop(grace_seconds=0.5)

        report = asyncio.run(scenario())
        assert report.sent == 10
        assert report.answered + report.failed == 10
        assert report.windows_answered == 2 * report.answered
        data = json.loads(report.to_json())
        assert data == report.to_dict()
        assert data["sent"] == 10
        assert 0.0 <= data["slo_attainment"] <= 1.0
        assert data["server_stats"]["server"]["received"] == 10
        assert "e2e p50 / p99" in report.to_text()

    def test_invalid_shape_rejected_typed(self):
        async def scenario():
            with pytest.raises(ServingError):
                await run_load("127.0.0.1", 1, [], connections=0, window=4)

        asyncio.run(scenario())


# ---------------------------------------------------------------------- #
class TestServerStatsUnit:
    def test_slo_attainment_weights_failures(self):
        stats = ServerStats()

        class _Response:
            class request:
                deadline_seconds = None

            deadline_missed = False

        stats.received = 4
        for e2e in (0.01, 0.02, 0.5):
            stats.record_answer(_Response(), e2e)
        stats.record_failure(DeadlineExceededError("late"))
        assert stats.failed == 1
        assert stats.slo_attainment(0.1) == pytest.approx(2 / 4)
        assert stats.to_dict()["failed_by_type"] == {"DeadlineExceededError": 1}

    def test_empty_stats_attain_trivially(self):
        stats = ServerStats()
        assert stats.slo_attainment(0.1) == 1.0
        assert stats.e2e_percentile(99.0) == 0.0


# ---------------------------------------------------------------------- #
class TestCli:
    def test_parser_accepts_the_network_subcommands(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["serve-net", "--port", "0", "--duration", "0.5"]
        )
        assert arguments.experiment == "serve-net"
        arguments = parser.parse_args(
            ["bench-client", "--requests", "16", "--pattern", "uniform"]
        )
        assert arguments.connections is None
        assert arguments.pattern == "uniform"

    def test_serve_net_rejects_client_shaping_flags(self):
        with pytest.raises(SystemExit):
            main(["serve-net", "--window", "4"])
        with pytest.raises(SystemExit):
            main(["serve-net", "--requests", "16"])

    def test_bench_client_rejects_duration_and_external_fleet_flags(self):
        with pytest.raises(SystemExit):
            main(["bench-client", "--duration", "1"])
        with pytest.raises(SystemExit):
            main(["bench-client", "--port", "9", "--devices", "3"])

    def test_workers_needs_a_concurrent_executor(self):
        with pytest.raises(SystemExit):
            main(["serve-net", "--executor", "serial", "--workers", "2"])
