"""Tests for PiloteConfig and the EmbeddingNetwork backbone."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.exceptions import ConfigurationError, ShapeError


class TestPiloteConfig:
    def test_paper_defaults_match_section_6(self):
        config = PiloteConfig.paper_defaults()
        assert config.hidden_dims == (1024, 512, 128, 64)
        assert config.embedding_dim == 128
        assert config.alpha == 0.5
        assert config.learning_rate == 0.01
        assert config.early_stopping_threshold == 1e-4
        assert config.early_stopping_patience == 5

    def test_layer_sizes_includes_input_and_embedding(self):
        config = PiloteConfig(hidden_dims=(16, 8), embedding_dim=4)
        assert config.layer_sizes(80) == (80, 16, 8, 4)

    def test_layer_sizes_rejects_bad_input_dim(self):
        with pytest.raises(ConfigurationError):
            PiloteConfig().layer_sizes(0)

    def test_with_overrides(self):
        config = PiloteConfig()
        other = config.with_overrides(alpha=0.25, margin=2.0)
        assert other.alpha == 0.25 and other.margin == 2.0
        assert config.alpha == 0.5  # original unchanged (frozen dataclass)

    def test_edge_lightweight_is_smaller(self):
        light = PiloteConfig.edge_lightweight()
        paper = PiloteConfig.paper_defaults()
        assert sum(light.hidden_dims) < sum(paper.hidden_dims)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_dims": ()},
            {"hidden_dims": (0, 4)},
            {"embedding_dim": 0},
            {"alpha": 1.5},
            {"margin": 0.0},
            {"contrastive_variant": "cosine"},
            {"learning_rate": 0.0},
            {"batch_size": 1},
            {"max_epochs_pretrain": 0},
            {"cache_size": 0},
            {"exemplar_strategy": "kmeans"},
            {"max_pairs_per_batch": 0},
        ],
    )
    def test_invalid_configurations(self, kwargs):
        with pytest.raises(ConfigurationError):
            PiloteConfig(**kwargs)


class TestEmbeddingNetwork:
    def _network(self, input_dim=10):
        config = PiloteConfig(hidden_dims=(16, 8), embedding_dim=4, seed=0)
        return EmbeddingNetwork(input_dim, config=config, rng=0)

    def test_forward_and_embed_shapes(self):
        network = self._network()
        batch = np.random.default_rng(0).normal(size=(6, 10))
        assert network(Tensor(batch)).shape == (6, 4)
        assert network.embed(batch).shape == (6, 4)

    def test_embed_accepts_single_row(self):
        network = self._network()
        assert network.embed(np.zeros(10)).shape == (1, 4)

    def test_embed_is_inference_mode_and_restores_training_flag(self):
        network = self._network()
        network.train()
        network.embed(np.zeros((3, 10)))
        assert network.training  # restored

    def test_embed_deterministic_in_eval(self):
        network = self._network()
        batch = np.random.default_rng(1).normal(size=(5, 10))
        assert np.allclose(network.embed(batch), network.embed(batch))

    def test_embed_chunking_matches_single_pass(self):
        network = self._network()
        batch = np.random.default_rng(2).normal(size=(20, 10))
        assert np.allclose(network.embed(batch, batch_size=7), network.embed(batch, batch_size=64))

    def test_wrong_input_dim_raises(self):
        network = self._network()
        with pytest.raises(ShapeError):
            network(Tensor(np.zeros((2, 7))))

    def test_normalized_embeddings_have_unit_norm(self):
        config = PiloteConfig(
            hidden_dims=(8,), embedding_dim=4, normalize_embeddings=True, seed=0
        )
        network = EmbeddingNetwork(6, config=config, rng=0)
        embeddings = network.embed(np.random.default_rng(0).normal(size=(5, 6)))
        assert np.allclose(np.linalg.norm(embeddings, axis=1), 1.0, atol=1e-6)

    def test_clone_frozen_is_identical_but_independent(self):
        network = self._network()
        frozen = network.clone_frozen()
        batch = np.random.default_rng(3).normal(size=(4, 10))
        assert np.allclose(network.embed(batch), frozen.embed(batch))
        # Mutating the original must not affect the clone.
        for parameter in network.parameters():
            parameter.data += 1.0
        assert not np.allclose(network.embed(batch), frozen.embed(batch))

    def test_describe_reports_parameter_count(self):
        network = self._network()
        description = network.describe()
        assert description["n_parameters"] == network.num_parameters()
        assert description["embedding_dim"] == 4

    def test_paper_backbone_dimensions(self):
        network = EmbeddingNetwork(80, config=PiloteConfig.paper_defaults(), rng=0)
        assert network.embed(np.zeros((2, 80))).shape == (2, 128)
