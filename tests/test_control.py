"""Control plane: signals, shedding, hedging, autoscaling, resize, chaos.

Covers the PR's tentpole seams end to end — the ``SignalBus``/``Controller``
protocol, load-shedding admission, hedged-request exactly-once accounting,
pool autoscaling with hysteresis/cooldown, the ``ProcessExecutor`` resize
regression (drain-then-retire, no lost in-flight batches) — plus the
rolling-window stats exports and the chaos suite's invariants.
"""

import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.control import (
    CHAOS_SCENARIOS,
    ChaosSpec,
    ControlPlane,
    ControlSignals,
    Controller,
    FlakyDevice,
    HedgedRequests,
    HedgedResult,
    HedgeStats,
    LoadShedder,
    PoolAutoscaler,
    SignalBus,
    StragglerDevice,
    default_controllers,
    make_controller,
    run_chaos,
)
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    ExecutorError,
    RequestCancelledError,
    RequestSheddedError,
    ServingError,
    WorkerDiedError,
)
from repro.fleet.router import DeviceStats, ROLLING_WINDOW, RoutingReport
from repro.serving import (
    EventLoopScheduler,
    LocalServingDevice,
    PredictRequest,
    ProcessExecutor,
    ServingClient,
    ThreadExecutor,
    serve,
)


def _infer(seconds=0.001):
    def run(windows):
        time.sleep(seconds)
        return np.zeros(windows.shape[0], dtype=np.int64)

    return run


def _devices(n, seconds=0.001):
    return [LocalServingDevice(_infer(seconds), device_id=i) for i in range(n)]


def _cheap_serving_learner(rng_seed):
    """A pre-trained-looking learner built without gradient training."""
    from repro.core.config import PiloteConfig
    from repro.core.embedding import EmbeddingNetwork
    from repro.core.pilote import PILOTE

    config = PiloteConfig(hidden_dims=(32, 16), embedding_dim=8, cache_size=100, seed=0)
    rng = np.random.default_rng(rng_seed)
    learner = PILOTE(config, seed=0)
    learner.model = EmbeddingNetwork(20, config=config, rng=rng_seed)
    learner._old_classes = list(range(3))
    for class_id in range(3):
        learner.exemplars.set_exemplars(class_id, rng.normal(size=(30, 20)))
    learner._refresh_prototypes()
    return learner


def _request(user_id, arrival=0.0, deadline=None, n_features=3):
    return PredictRequest(
        user_id=user_id,
        features=np.full((1, n_features), float(user_id)),
        arrival_seconds=arrival,
        deadline_seconds=deadline,
    )


def _client(n_devices=2, *, routing="p2c", scheduling="edf", seconds=0.001,
            executor=None, workers=None):
    return ServingClient(
        _devices(n_devices, seconds), routing=routing, seed=0,
        scheduling=scheduling, executor=executor, workers=workers,
    )


def _signals(tick=10, workers=2, depth=0, rate=0.0, attainment=1.0, n_lanes=8):
    return ControlSignals(
        tick=tick,
        now=0.0,
        n_lanes=n_lanes,
        workers=workers,
        queue_depths=np.full(n_lanes, depth // n_lanes, dtype=np.int64),
        queue_depth=depth,
        arrival_rate=rate,
        rolling_attainment=attainment,
        lane_failures=np.zeros(n_lanes, dtype=np.int64),
    )


# ---------------------------------------------------------------------- #
class TestSignals:
    def test_window_must_be_positive(self):
        scheduler = EventLoopScheduler(_devices(1), seed=0)
        with pytest.raises(ConfigurationError, match="window"):
            SignalBus(scheduler, window=0)

    def test_bus_reads_scheduler_exports(self):
        client = _client(2)
        bus = SignalBus(client.scheduler, window=4)
        bus.observe_submit(8)
        client.submit_many([_request(u) for u in range(8)])
        signals = bus.snapshot()
        assert signals.tick == 1
        assert signals.n_lanes == 2
        assert signals.queue_depth == 8
        assert signals.arrival_rate == 8.0
        assert signals.workers is None  # serial executor has no pool
        assert np.all(signals.lane_failures == 0)
        client.drain()
        assert bus.snapshot().queue_depth == 0

    def test_failure_diffing_is_windowed(self):
        client = _client(2)
        flaky = FlakyDevice(client.scheduler.devices[0])
        client.scheduler.devices[0] = flaky
        bus = SignalBus(client.scheduler, window=2)
        flaky.failing = True
        bus.observe_submit(4)
        client.submit_many([_request(u) for u in range(4)])
        client.drain()
        assert bus.snapshot().lane_failures.sum() > 0
        flaky.failing = False
        # Two clean windows push the failure marks out of the deque.
        for _ in range(2):
            bus.observe_submit(0)
        assert bus.snapshot().lane_failures.sum() == 0


class TestControlPlane:
    def test_requires_a_serving_client(self):
        with pytest.raises(ConfigurationError, match="ServingClient"):
            ControlPlane(object())

    def test_attaches_and_routes_hooks(self):
        client = _client(2)
        seen = []

        class Probe(Controller):
            name = "probe"

            def on_submit(self, requests, futures, signals):
                seen.append(("submit", len(requests), signals.tick))
                return futures

            def on_tick(self, signals):
                seen.append(("tick", signals.queue_depth, signals.tick))

        plane = ControlPlane(client, [Probe()])
        assert client.control is plane
        client.submit_many([_request(u) for u in range(3)])
        client.drain()
        assert seen == [("submit", 3, 1), ("tick", 0, 1)]
        assert plane.controller("probe") is plane.controllers[0]
        stats = client.control_stats()
        assert stats["controllers"] == ["probe"]
        assert "probe" in stats

    def test_default_stack_feature_detects(self):
        # Single lane, serial executor: only the shedder applies.
        single = default_controllers(EventLoopScheduler(_devices(1), seed=0))
        assert [c.name for c in single] == ["load-shedder"]
        # Two lanes + resizable executor: the full stack.
        scheduler = EventLoopScheduler(
            _devices(2), seed=0, executor="thread", workers=1
        )
        full = default_controllers(scheduler)
        assert [c.name for c in full] == ["load-shedder", "hedging", "autoscaler"]
        scheduler.close()

    def test_serve_adaptive_flag(self, pretrained_pilote):
        client = serve(pretrained_pilote, adaptive=True)
        assert client.control is not None
        assert client.control_stats()["controllers"] == ["load-shedder"]
        plain = serve(pretrained_pilote)
        assert plain.control is None and plain.control_stats() is None

    def test_make_controller_registry(self):
        assert isinstance(make_controller("load-shedder"), LoadShedder)
        assert isinstance(
            make_controller("hedging", slack_seconds=0.5), HedgedRequests
        )
        assert isinstance(make_controller("autoscaler"), PoolAutoscaler)
        with pytest.raises(ConfigurationError, match="unknown controller"):
            make_controller("pid")


# ---------------------------------------------------------------------- #
class TestLoadShedding:
    def test_watermark_validation(self):
        with pytest.raises(ConfigurationError, match="watermarks"):
            LoadShedder(high_queue_per_lane=4.0, low_queue_per_lane=8.0)
        with pytest.raises(ConfigurationError, match="margin"):
            LoadShedder(margin_seconds=-1.0)

    def test_inactive_shedder_admits_everything(self):
        client = _client(1, routing="hash")
        ControlPlane(client, [LoadShedder(high_queue_per_lane=1e9)])
        futures = client.submit_many(
            [_request(u, deadline=100.0) for u in range(32)]
        )
        client.drain()
        assert all(f.exception() is None for f in futures)
        assert client.report().total_shed == 0

    def test_sheds_doomed_work_under_overload(self):
        client = _client(1, routing="hash", scheduling="fifo", seconds=0.002)
        shedder = LoadShedder(high_queue_per_lane=8.0, low_queue_per_lane=1.0)
        ControlPlane(client, [shedder])
        assert client.scheduler.admission is shedder
        # Prime service-time history, then pile up a deep queue (activates
        # the shedder) and submit a tight-deadline wave behind it.
        client.submit(_request(0, deadline=1000.0))
        client.drain()
        client.submit_many([_request(u, deadline=1000.0) for u in range(48)])
        assert shedder.active
        now = client.clock_now()
        doomed = client.submit_many(
            [_request(u, arrival=now, deadline=now + 0.005) for u in range(4)]
        )
        errors = [f.exception() for f in doomed]
        assert all(isinstance(e, RequestSheddedError) for e in errors)
        assert all(isinstance(e, DeadlineExceededError) for e in errors)
        client.drain()
        report = client.report()
        assert report.total_shed == 4
        # shed ⊆ rejected ⊆ expired: the cheap-reject path reuses PR 4's
        # admission accounting rather than inventing a new outcome.
        assert report.total_shed <= report.total_rejected <= report.total_expired
        assert client.control_stats()["load-shedder"]["shed"] == 4

    def test_never_sheds_work_edf_could_save(self):
        client = _client(1, routing="hash", scheduling="edf", seconds=0.002)
        shedder = LoadShedder(high_queue_per_lane=8.0, low_queue_per_lane=1.0)
        ControlPlane(client, [shedder])
        client.submit(_request(0, deadline=1000.0))
        client.drain()
        # A deep queue of *relaxed* deadlines activates the shedder...
        client.submit_many([_request(u, deadline=1000.0) for u in range(48)])
        assert shedder.active
        # ...but an urgent request jumps it under EDF: only earlier-or-equal
        # deadlines count as work ahead, so its projection clears.
        now = client.clock_now()
        urgent = client.submit(_request(7, arrival=now, deadline=now + 0.05))
        assert not isinstance(urgent.exception() if urgent.done() else None,
                              RequestSheddedError)
        client.drain()
        assert urgent.exception() is None

    def test_hysteresis_deactivates_below_low_watermark(self):
        client = _client(1, routing="hash")
        shedder = LoadShedder(high_queue_per_lane=8.0, low_queue_per_lane=2.0)
        ControlPlane(client, [shedder])
        client.submit_many([_request(u, deadline=1000.0) for u in range(16)])
        assert shedder.active and shedder.activations == 1
        client.drain()
        client.submit_many([_request(0, deadline=1000.0)])
        assert not shedder.active
        client.drain()


# ---------------------------------------------------------------------- #
class TestCancellation:
    def test_cancel_before_service(self):
        client = _client(1, routing="hash")
        future = client.submit(_request(0))
        assert future.cancel() and future.cancelled()
        client.drain()
        assert isinstance(future.exception(), RequestCancelledError)
        report = client.report()
        assert report.total_cancelled == 1
        # Cancelled ≠ expired/failed: the SLO breakdown keys are unchanged.
        assert set(report.deadline_breakdown()) == {
            "served", "missed", "expired", "failed",
        }

    def test_cancel_after_done_returns_false(self):
        client = _client(1, routing="hash")
        future = client.submit(_request(0))
        client.drain()
        assert future.done() and not future.cancel() and not future.cancelled()
        assert future.exception() is None

    def test_cancel_is_exactly_once_per_future(self):
        client = _client(1, routing="hash")
        futures = client.submit_many([_request(u) for u in range(3)])
        assert futures[1].cancel() and futures[1].cancel()  # idempotent flag
        client.drain()
        report = client.report()
        assert report.total_cancelled == 1
        assert report.total_requests == 2  # the other two served


# ---------------------------------------------------------------------- #
class _FakeAttempt:
    """Stand-in future with the PendingResult completion surface."""

    def __init__(self, advisory_cancel=False):
        self.request = None
        self._done = False
        self._error = None
        self._callbacks = []
        self.cancel_calls = 0
        self._advisory = advisory_cancel

    def done(self):
        return self._done

    def exception(self):
        return self._error

    def result(self):
        if self._error is not None:
            raise self._error
        return f"answer-{id(self)}"

    def add_done_callback(self, callback):
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def cancel(self):
        self.cancel_calls += 1
        if self._done:
            return False
        if not self._advisory:
            self.resolve(error=RequestCancelledError("cancelled"))
        return True

    def resolve(self, error=None):
        self._done = True
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class TestHedgedResult:
    def test_primary_wins_loser_cancelled(self):
        stats = HedgeStats(fired=1)
        primary, hedge = _FakeAttempt(), _FakeAttempt()
        paired = HedgedResult(None, primary, hedge, stats)
        fired = []
        paired.add_done_callback(fired.append)
        primary.resolve()
        assert paired.done() and paired.exception() is None
        assert stats.primary_wins == 1 and stats.losers_cancelled == 1
        assert hedge.cancel_calls == 1
        assert fired == [paired]
        assert stats.consistent()

    def test_hedge_wins_then_loser_resolves_late(self):
        # Advisory cancel: the loser's batch reaches service anyway and the
        # late resolution must count as wasted work, not a second answer.
        stats = HedgeStats(fired=1)
        primary, hedge = _FakeAttempt(advisory_cancel=True), _FakeAttempt()
        paired = HedgedResult(None, primary, hedge, stats)
        fired = []
        paired.add_done_callback(fired.append)
        hedge.resolve()
        assert stats.hedge_wins == 1 and primary.cancel_calls == 1
        assert paired.result() == f"answer-{id(hedge)}"
        primary.resolve()  # served after the pair settled
        assert stats.losers_served == 1 and stats.losers_cancelled == 0
        assert fired == [paired]  # callbacks fired exactly once
        assert stats.consistent()

    def test_both_fail_settles_on_primary_error(self):
        stats = HedgeStats(fired=1)
        primary, hedge = _FakeAttempt(), _FakeAttempt()
        paired = HedgedResult(None, primary, hedge, stats)
        hedge.resolve(error=WorkerDiedError("hedge lane died"))
        assert not paired.done()  # one failure does not settle the pair
        primary.resolve(error=DeadlineExceededError("expired in queue"))
        assert paired.done() and stats.pairs_failed == 1
        assert isinstance(paired.exception(), DeadlineExceededError)
        with pytest.raises(DeadlineExceededError):
            paired.result()
        assert stats.consistent()

    def test_loser_failing_before_winner_still_partitions(self):
        # The hedge fails first (e.g. rejected at admission), then the
        # primary wins: the early failure must land in the loser ledger.
        stats = HedgeStats(fired=1)
        primary, hedge = _FakeAttempt(), _FakeAttempt()
        hedge.resolve(error=RequestSheddedError("shed on arrival"))
        paired = HedgedResult(None, primary, hedge, stats)
        primary.resolve()
        assert stats.primary_wins == 1 and stats.losers_failed == 1
        assert stats.consistent()

    def test_unsettled_pair_raises_typed(self):
        stats = HedgeStats(fired=1)
        paired = HedgedResult(None, _FakeAttempt(), _FakeAttempt(), stats)
        with pytest.raises(ServingError, match="pending"):
            paired.result()


class TestHedgedRequests:
    def test_option_validation(self):
        with pytest.raises(ConfigurationError, match="slack"):
            HedgedRequests(slack_seconds=-0.1)
        with pytest.raises(ConfigurationError, match="unhealthy"):
            HedgedRequests(unhealthy_failures=0)

    def test_hedges_away_from_dying_lane(self):
        # Lane failures make the chosen lane "unhealthy" in the signal
        # window; subsequent waves hedge onto the sibling and win there.
        client = _client(2, routing="p2c", scheduling="edf")
        flaky = FlakyDevice(client.scheduler.devices[0])
        client.scheduler.devices[0] = flaky
        hedging = HedgedRequests()
        ControlPlane(client, [hedging], window=8)
        flaky.failing = True
        warm = client.submit_many([_request(u, deadline=50.0) for u in range(8)])
        client.drain()  # lane 0's failures are now in the window
        futures = client.submit_many(
            [_request(u, deadline=50.0) for u in range(8)]
        )
        client.drain()
        hedged = [f for f in futures if isinstance(f, HedgedResult)]
        assert hedged, "no hedge fired against a lane failing in-window"
        # Every hedged request was answered despite its primary lane dying.
        assert all(f.exception() is None for f in hedged)
        stats = hedging.hedges
        assert stats.fired == len(hedged)
        assert stats.hedge_wins >= 1
        assert stats.consistent()
        report = client.report()
        # Cancelled losers are accounted, and sit outside the SLO keys.
        assert report.total_cancelled == stats.losers_cancelled

    def test_both_attempts_complete_in_same_drain(self):
        # Thread executor runs both lanes in one round, so the loser's
        # batch reaches service before its cancel flag is seen: the pair
        # must count it as wasted (losers_served), never double-answer.
        client = _client(2, routing="p2c", scheduling="edf",
                         executor="thread", workers=2)
        try:
            flaky = FlakyDevice(client.scheduler.devices[0])
            client.scheduler.devices[0] = flaky
            hedging = HedgedRequests()
            ControlPlane(client, [hedging])
            flaky.failing = True
            client.submit_many([_request(u, deadline=50.0) for u in range(8)])
            client.drain()
            flaky.failing = False  # lane recovers: both attempts now succeed
            futures = client.submit_many(
                [_request(u, deadline=50.0) for u in range(8)]
            )
            client.drain()
            hedged = [f for f in futures if isinstance(f, HedgedResult)]
            assert hedged
            assert all(f.exception() is None for f in hedged)
            stats = hedging.hedges
            assert stats.settled == stats.fired
            assert stats.losers_resolved == stats.fired
            assert stats.consistent()
        finally:
            client.close()

    def test_single_lane_never_hedges(self):
        client = _client(1, routing="hash")
        hedging = HedgedRequests()
        ControlPlane(client, [hedging])
        futures = client.submit_many([_request(u, deadline=50.0) for u in range(4)])
        client.drain()
        assert hedging.hedges.fired == 0
        assert not any(isinstance(f, HedgedResult) for f in futures)


# ---------------------------------------------------------------------- #
class TestAutoscaler:
    def _bound(self, executor, **options):
        scaler = PoolAutoscaler(**options)
        scaler.bind(SimpleNamespace(executor=executor))
        return scaler

    def _executor(self, workers=2, cap=8):
        state = SimpleNamespace(n_workers=workers, calls=[])

        def resize(requested):
            state.n_workers = max(1, min(int(requested), cap))
            state.calls.append(requested)
            return state.n_workers

        state.resize = resize
        return state

    def test_option_validation(self):
        with pytest.raises(ConfigurationError, match="min_workers"):
            PoolAutoscaler(min_workers=0)
        with pytest.raises(ConfigurationError, match="max_workers"):
            PoolAutoscaler(min_workers=4, max_workers=2)
        with pytest.raises(ConfigurationError, match="watermarks"):
            PoolAutoscaler(high_queue_per_worker=1.0, low_queue_per_worker=2.0)
        with pytest.raises(ConfigurationError, match="attainment_floor"):
            PoolAutoscaler(attainment_floor=1.5)

    def test_grows_under_queue_pressure(self):
        executor = self._executor(workers=2)
        scaler = self._bound(
            executor, high_queue_per_worker=8.0, low_queue_per_worker=2.0,
            cooldown_ticks=0,
        )
        scaler.on_submit([], [], _signals(tick=1, workers=2, depth=64))
        assert executor.n_workers == 4  # doubled, not crept
        assert scaler.stats()["scale_ups"] == 1

    def test_grows_on_poor_attainment_with_moderate_queue(self):
        executor = self._executor(workers=2)
        scaler = self._bound(
            executor, high_queue_per_worker=100.0, low_queue_per_worker=4.0,
            attainment_floor=0.9, cooldown_ticks=0,
        )
        scaler.on_submit(
            [], [], _signals(tick=1, workers=2, depth=16, attainment=0.5)
        )
        assert executor.n_workers == 4

    def test_shrinks_only_when_quiet_and_attaining(self):
        executor = self._executor(workers=4)
        scaler = self._bound(executor, low_queue_per_worker=8.0, cooldown_ticks=0)
        # Attainment below the floor vetoes the shrink outright.
        scaler.on_tick(_signals(tick=1, workers=4, rate=1.0, attainment=0.5))
        assert executor.n_workers == 4
        # Hysteresis: the rate is tested against the *shrunken* pool.
        scaler.on_tick(_signals(tick=2, workers=4, rate=30.0))
        assert executor.n_workers == 4  # 30 >= 8 x 3: would regrow, vetoed
        scaler.on_tick(_signals(tick=3, workers=4, rate=2.0))
        assert executor.n_workers == 3
        assert scaler.stats()["scale_downs"] == 1

    def test_cooldown_prevents_flapping(self):
        executor = self._executor(workers=2)
        scaler = self._bound(
            executor, high_queue_per_worker=8.0, low_queue_per_worker=2.0,
            cooldown_ticks=3,
        )
        scaler.on_submit([], [], _signals(tick=1, workers=2, depth=64))
        assert executor.n_workers == 4
        # A quiet tick right after the grow may NOT shrink (cooldown)...
        scaler.on_tick(_signals(tick=2, workers=4, rate=0.0))
        assert executor.n_workers == 4
        # ...until cooldown_ticks submissions have passed.
        scaler.on_tick(_signals(tick=4, workers=4, rate=0.0))
        assert executor.n_workers == 3
        assert scaler.stats()["actions"] == 2

    def test_respects_min_and_cap(self):
        executor = self._executor(workers=1, cap=8)
        scaler = self._bound(
            executor, min_workers=1, max_workers=2,
            high_queue_per_worker=1.0, low_queue_per_worker=0.5,
            cooldown_ticks=0,
        )
        scaler.on_submit([], [], _signals(tick=1, workers=1, depth=100))
        assert executor.n_workers == 2  # capped at max_workers
        scaler.on_submit([], [], _signals(tick=2, workers=2, depth=100))
        assert executor.n_workers == 2
        scaler.on_tick(_signals(tick=3, workers=1, rate=0.0))
        assert executor.n_workers == 2  # already at min_workers=1 per signals

    def test_inline_executor_is_a_noop(self):
        scaler = PoolAutoscaler(cooldown_ticks=0)
        scaler.bind(SimpleNamespace(executor=SimpleNamespace()))  # no resize
        scaler.on_submit([], [], _signals(tick=1, workers=None, depth=1000))
        assert scaler.stats()["actions"] == 0

    def test_autoscaler_drives_thread_pool_through_plane(self):
        client = _client(4, routing="hash", executor="thread", workers=1)
        try:
            scaler = PoolAutoscaler(
                high_queue_per_worker=4.0, low_queue_per_worker=0.5,
                cooldown_ticks=0,
            )
            ControlPlane(client, [scaler])
            futures = client.submit_many([_request(u) for u in range(64)])
            assert client.scheduler.executor.n_workers > 1  # grew pre-drain
            client.drain()
            assert all(f.exception() is None for f in futures)
            assert scaler.stats()["scale_ups"] >= 1
        finally:
            client.close()


# ---------------------------------------------------------------------- #
class TestExecutorResize:
    def test_thread_resize_caps_and_validates(self):
        executor = ThreadExecutor(workers=1)
        executor.bind(_devices(2))
        assert executor.resize(8) == 2  # capped at lane count
        with pytest.raises(ConfigurationError):
            executor.resize(0)

    def test_process_resize_validates(self):
        executor = ProcessExecutor(workers=1)
        executor.bind(_devices(2))
        with pytest.raises(ConfigurationError):
            executor.resize(-1)
        executor.close()

    def test_process_resize_mid_round_raises_typed(self):
        executor = ProcessExecutor(workers=1)
        executor.bind(_devices(2))
        executor._running = True
        try:
            with pytest.raises(ExecutorError, match="mid-round"):
                executor.resize(2)
        finally:
            executor._running = False
            executor.close()

    def test_process_pool_resize_loses_no_batches(self):
        # Grow and shrink across rounds; every future must complete with
        # the same answers the serial path gives (drain-then-retire).
        engine = _cheap_serving_learner(0).inference_engine()
        devices = [
            LocalServingDevice(engine.predict, device_id=i, engine=engine)
            for i in range(2)
        ]
        client = ServingClient(
            devices, routing="hash", seed=0, executor="process", workers=1
        )
        try:
            pool = np.random.default_rng(0).normal(size=(48, 20))
            expected = engine.predict(pool)
            waves = []
            for wave_index, workers in enumerate((1, 2, 1)):
                assert client.scheduler.executor.resize(workers) == workers
                futures = client.submit_many(
                    [
                        PredictRequest(user_id=u, features=pool[16 * wave_index + u])
                        for u in range(16)
                    ]
                )
                client.drain()
                waves.append(futures)
            for wave_index, futures in enumerate(waves):
                for u, future in enumerate(futures):
                    assert future.exception() is None
                    assert (
                        future.result().class_ids[0]
                        == expected[16 * wave_index + u]
                    )
        finally:
            client.close()

    def test_kill_worker_conserves_futures(self):
        engine = _cheap_serving_learner(0).inference_engine()
        devices = [
            LocalServingDevice(engine.predict, device_id=i, engine=engine)
            for i in range(2)
        ]
        client = ServingClient(
            devices, routing="hash", seed=0, executor="process", workers=2
        )
        try:
            pool = np.random.default_rng(1).normal(size=(16, 20))
            futures = client.submit_many(
                [PredictRequest(user_id=u, features=pool[u]) for u in range(16)]
            )
            client.scheduler.executor.kill_worker(0)
            client.drain()
            served = sum(1 for f in futures if f.exception() is None)
            died = sum(
                1 for f in futures if isinstance(f.exception(), WorkerDiedError)
            )
            assert served + died == 16  # every future resolved, exactly once
        finally:
            client.close()


# ---------------------------------------------------------------------- #
class TestRollingStats:
    def test_device_stats_rolling_window(self):
        stats = DeviceStats(device_id=0, profile="test")
        assert stats.rolling_deadline_attainment == 1.0
        for index in range(3 * ROLLING_WINDOW):
            stats.note_deadline(index % 2 == 0)
        assert len(stats.recent_deadlines) <= 2 * ROLLING_WINDOW
        assert stats.rolling_deadline_attainment == pytest.approx(0.5)
        data = stats.to_dict()
        assert data["rolling_window"] == ROLLING_WINDOW
        assert data["rolling_deadline_attainment"] == pytest.approx(0.5)
        assert "queue_depth" in data and "failures" in data

    def test_report_exports_rolling_and_control_counters(self):
        client = _client(1, routing="hash")
        client.submit_many([_request(u, deadline=100.0) for u in range(4)])
        client.drain()
        report = client.report()
        data = report.to_dict()
        for key in (
            "total_shed", "total_cancelled", "total_queue_depth",
            "rolling_deadline_attainment",
        ):
            assert key in data
        assert data["rolling_deadline_attainment"] == 1.0
        restored = RoutingReport.from_dict(data)
        assert restored.total_shed == report.total_shed
        assert restored.total_cancelled == report.total_cancelled

    def test_queue_depth_gauge_tracks_pending(self):
        client = _client(2)
        client.submit_many([_request(u) for u in range(6)])
        report = client.report()
        assert report.total_queue_depth == 6
        assert int(client.scheduler.queue_depths.sum()) == 6
        client.drain()
        assert client.report().total_queue_depth == 0


# ---------------------------------------------------------------------- #
class TestChaos:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            ChaosSpec(name="x", scenario="meteor")
        with pytest.raises(ConfigurationError, match="storm_ticks"):
            ChaosSpec(name="x", scenario="worker-storm", storm_ticks=(99,))
        with pytest.raises(ConfigurationError, match="restart_tick"):
            ChaosSpec(name="x", scenario="restart", restart_tick=99)

    def test_registry_covers_the_required_scenarios(self):
        assert {"worker-storm", "worker-storm-process", "stragglers", "restart"} \
            <= set(CHAOS_SCENARIOS)

    def test_worker_storm_exactly_once_both_modes(self):
        spec = ChaosSpec(
            name="storm-small", scenario="worker-storm", seed=3,
            n_devices=2, n_ticks=5, requests_per_tick=12,
            storm_ticks=(1, 2), storm_devices=(0,),
        )
        for adaptive in (True, False):
            report = run_chaos(spec, adaptive=adaptive)
            assert report.sent == 60
            assert report.exactly_once, report.to_dict()
            assert report.answered + report.failed == report.sent
        static = run_chaos(spec, adaptive=False)
        assert static.failed_by_type.get("WorkerDiedError", 0) > 0

    def test_restart_fails_pending_typed_not_dropped(self):
        spec = ChaosSpec(
            name="restart-small", scenario="restart", seed=5,
            n_devices=2, n_ticks=6, requests_per_tick=8, restart_tick=2,
            storm_ticks=(),
        )
        report = run_chaos(spec, adaptive=True)
        assert report.exactly_once, report.to_dict()
        assert report.failed_by_type.get("ClientClosedError", 0) == 8
        assert report.answered == report.sent - 8

    def test_straggler_device_slows_only_while_flagged(self):
        inner = LocalServingDevice(_infer(), device_id=0)
        straggler = StragglerDevice(inner, slow_factor=4.0)
        baseline = straggler.profile.relative_compute
        straggler.slow = True
        assert straggler.profile.relative_compute == pytest.approx(baseline / 4.0)
        straggler.slow = False
        assert straggler.profile.relative_compute == pytest.approx(baseline)
        with pytest.raises(ConfigurationError, match="slow_factor"):
            StragglerDevice(inner, slow_factor=1.0)


# ---------------------------------------------------------------------- #
class TestCli:
    def test_chaos_experiment_parses(self):
        arguments = build_parser().parse_args(["chaos"])
        assert arguments.experiment == "chaos"
        assert arguments.chaos_scenario is None
        arguments = build_parser().parse_args(
            ["chaos", "--chaos-scenario", "worker-storm"]
        )
        assert arguments.chaos_scenario == "worker-storm"

    def test_chaos_scenario_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--chaos-scenario", "meteor"])

    def test_chaos_scenario_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["table2", "--chaos-scenario", "worker-storm"])

    def test_adaptive_flag_parses_for_fleet_sim(self):
        arguments = build_parser().parse_args(["fleet-sim", "--adaptive"])
        assert arguments.adaptive is True

    def test_adaptive_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["serve", "--adaptive"])
        with pytest.raises(SystemExit):
            main(["chaos", "--adaptive"])
