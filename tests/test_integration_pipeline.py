"""End-to-end integration tests: raw sensors → features → cloud → edge → predictions.

These tests run the whole MAGNETO-style pipeline at small scale and assert the
paper's qualitative claims: the new activity is learned, old activities are not
catastrophically forgotten, PILOTE is competitive with (usually better than)
plain re-training, and the edge footprint stays small.
"""

import copy

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.activities import Activity
from repro.data.sensors import default_sensor_suite
from repro.data.streams import build_incremental_scenario
from repro.data.synthetic import SyntheticSensorGenerator, make_feature_dataset
from repro.data.dataset import HARDataset
from repro.edge.magneto import MagnetoPlatform
from repro.features.extractor import StatisticalFeatureExtractor
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.forgetting import forgetting_report
from repro.timeseries.normalize import z_score
from repro.utils.serialization import load_npz_state, save_npz_state


@pytest.fixture(scope="module")
def pipeline_dataset():
    """Dataset built from raw windows through the full preprocessing pipeline."""
    suite = default_sensor_suite()
    generator = SyntheticSensorGenerator(suite=suite, seed=21)
    windows, labels = generator.generate_dataset(70)
    extractor = StatisticalFeatureExtractor(
        suite.triaxial_groups, sampling_rate_hz=suite.sampling_rate_hz
    )
    features = z_score(extractor.transform(windows))
    names = {int(a): a.display_name for a in Activity}
    return HARDataset(features=features, labels=labels, label_names=names)


@pytest.fixture(scope="module")
def pipeline_scenario(pipeline_dataset):
    return build_incremental_scenario(pipeline_dataset, [Activity.RUN], rng=3)


@pytest.fixture(scope="module")
def config():
    return PiloteConfig(
        hidden_dims=(48, 24),
        embedding_dim=12,
        batch_size=24,
        max_epochs_pretrain=10,
        max_epochs_increment=8,
        cache_size=120,
        seed=3,
    )


class TestFullPipeline:
    def test_raw_windows_to_80_features(self, pipeline_dataset):
        assert pipeline_dataset.n_features == 80
        assert pipeline_dataset.n_samples == 70 * 5

    def test_magneto_end_to_end(self, pipeline_scenario, config):
        platform = MagnetoPlatform(config, seed=3)
        platform.cloud_pretrain(
            pipeline_scenario.old_train,
            pipeline_scenario.old_validation,
            exemplars_per_class=20,
        )
        package = platform.deploy_to_edge()
        assert package.total_bytes < platform.device.profile.storage_bytes
        platform.edge_learn_new_activity(
            pipeline_scenario.new_train, pipeline_scenario.new_validation
        )
        predictions = platform.edge_predict(pipeline_scenario.test.features)
        accuracy = float(np.mean(predictions == pipeline_scenario.test.labels))
        assert accuracy > 0.6

    def test_incremental_comparison_reproduces_paper_ordering(self, pipeline_scenario, config):
        """PILOTE should forget less than re-training without distillation."""
        base = PILOTE(config, seed=3)
        base.pretrain(
            pipeline_scenario.old_train,
            pipeline_scenario.old_validation,
            exemplars_per_class=20,
        )
        test = pipeline_scenario.test
        before_predictions = None

        pilote = copy.deepcopy(base)
        retrained = copy.deepcopy(base)
        retrained.config = retrained.config.with_overrides(alpha=0.0)

        pilote.learn_new_classes(
            pipeline_scenario.new_train, pipeline_scenario.new_validation
        )
        retrained.learn_new_classes(
            pipeline_scenario.new_train, pipeline_scenario.new_validation
        )

        # Forgetting report: old-class accuracy before vs after for PILOTE.
        old_test = test.select_classes(pipeline_scenario.old_classes)
        before = base.evaluate(old_test)
        after_pilote = float(
            np.mean(
                pilote.predict(old_test.features) == old_test.labels
            )
        )
        after_retrained = float(
            np.mean(
                retrained.predict(old_test.features) == old_test.labels
            )
        )
        assert after_pilote >= after_retrained - 0.05
        assert after_pilote >= before - 0.30  # bounded forgetting

        # PILOTE must actually learn the new class (Run overlaps with Walk by
        # construction, so the bar is above chance rather than near-perfect),
        # while keeping the overall five-class accuracy high.
        new_test = test.select_classes(pipeline_scenario.new_classes)
        assert pilote.evaluate(new_test) > 0.3
        assert pilote.evaluate(test) > 0.6

    def test_confusion_structure_run_vs_walk(self, pipeline_scenario, config):
        """After learning Run, most residual confusion should involve Walk (the hard pair)."""
        learner = PILOTE(config, seed=4)
        learner.pretrain(
            pipeline_scenario.old_train,
            pipeline_scenario.old_validation,
            exemplars_per_class=20,
        )
        learner.learn_new_classes(
            pipeline_scenario.new_train, pipeline_scenario.new_validation
        )
        test = pipeline_scenario.test
        matrix = ConfusionMatrix.from_predictions(
            test.labels, learner.predict(test.features), classes=sorted(test.classes.tolist())
        )
        run, walk, still = int(Activity.RUN), int(Activity.WALK), int(Activity.STILL)
        assert matrix.count(run, walk) + matrix.count(walk, run) >= matrix.count(
            run, still
        ) + matrix.count(still, run)

    def test_model_round_trip_through_serialization(self, pipeline_scenario, config, tmp_path):
        learner = PILOTE(config, seed=5)
        learner.pretrain(
            pipeline_scenario.old_train,
            pipeline_scenario.old_validation,
            exemplars_per_class=10,
        )
        predictions_before = learner.predict(pipeline_scenario.test.features)
        path = save_npz_state(tmp_path / "model", learner.model.state_dict())
        state = load_npz_state(path)
        fresh = PILOTE(config, seed=99)
        fresh.pretrain(
            pipeline_scenario.old_train,
            pipeline_scenario.old_validation,
            exemplars_per_class=10,
        )
        fresh.model.load_state_dict(state)
        fresh.build_support_set(pipeline_scenario.old_train, per_class=10)
        predictions_after = fresh.predict(pipeline_scenario.test.features)
        agreement = float(np.mean(predictions_before == predictions_after))
        assert agreement > 0.95

    def test_feature_dataset_helper_matches_manual_pipeline(self):
        dataset = make_feature_dataset(samples_per_class=15, seed=0)
        assert dataset.n_features == 80
        assert set(dataset.classes.tolist()) == {int(a) for a in Activity}
