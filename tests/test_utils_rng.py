"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import get_global_seed, resolve_rng, set_global_seed, spawn_rngs


class TestResolveRng:
    def test_from_int_is_deterministic(self):
        first = resolve_rng(3).normal(size=5)
        second = resolve_rng(3).normal(size=5)
        assert np.allclose(first, second)

    def test_different_seeds_differ(self):
        assert not np.allclose(resolve_rng(1).normal(size=5), resolve_rng(2).normal(size=5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert resolve_rng(generator) is generator

    def test_none_returns_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)


class TestGlobalSeed:
    def test_global_seed_controls_none(self):
        set_global_seed(99)
        try:
            assert get_global_seed() == 99
            first = resolve_rng(None).normal(size=4)
            second = resolve_rng(None).normal(size=4)
            assert np.allclose(first, second)
        finally:
            set_global_seed(None)

    def test_clearing_global_seed(self):
        set_global_seed(5)
        set_global_seed(None)
        assert get_global_seed() is None


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_spawned_streams_are_independent(self):
        streams = spawn_rngs(0, 2)
        assert not np.allclose(streams[0].normal(size=5), streams[1].normal(size=5))

    def test_spawn_deterministic_from_seed(self):
        a = [g.normal() for g in spawn_rngs(7, 3)]
        b = [g.normal() for g in spawn_rngs(7, 3)]
        assert np.allclose(a, b)

    def test_spawn_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero_returns_empty(self):
        assert spawn_rngs(0, 0) == []
