"""Tests for the Trainer and the paper's early-stopping rule."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn.layers import Linear, Sequential, ReLU
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import Adam
from repro.nn.schedulers import HalvingLR
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory


class TestEarlyStopping:
    def test_plateau_rule_from_paper(self):
        stopper = EarlyStopping(threshold=1e-4, patience=5)
        # 5 consecutive epochs with < 1e-4 change trigger a stop on the 6th value.
        assert not stopper.update(1.0)
        signals = [stopper.update(1.0 + 1e-6 * i) for i in range(1, 6)]
        assert signals[-1] is True
        assert all(not s for s in signals[:-1])

    def test_large_changes_reset_streak(self):
        stopper = EarlyStopping(threshold=1e-4, patience=3)
        stopper.update(1.0)
        stopper.update(1.00001)
        stopper.update(0.5)  # big improvement resets
        assert not stopper.update(0.50001)
        assert not stopper.update(0.500011)

    def test_increase_mode(self):
        stopper = EarlyStopping(threshold=0.0, patience=2, mode="increase")
        stopper.update(1.0)
        assert not stopper.update(1.1)
        assert stopper.update(1.2)

    def test_reset(self):
        stopper = EarlyStopping(threshold=1e-4, patience=1)
        stopper.update(1.0)
        stopper.update(1.0)
        stopper.reset()
        assert not stopper.update(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(mode="bogus")


class TestTrainingHistory:
    def test_epoch_count_and_final_losses(self):
        history = TrainingHistory(train_losses=[1.0, 0.5], validation_losses=[0.9, 0.6])
        assert history.epochs_run == 2
        assert history.final_train_loss() == 0.5
        assert history.final_validation_loss() == 0.6

    def test_empty_history_is_nan(self):
        history = TrainingHistory()
        assert np.isnan(history.final_train_loss())


class TestTrainer:
    def _regression_setup(self, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(120, 5))
        true_weights = rng.normal(size=(5, 1))
        targets = features @ true_weights
        model = Sequential(Linear(5, 1, rng=seed))
        criterion = MSELoss()

        def batch_loss(batch_x, batch_y):
            return criterion(model(Tensor(batch_x)), batch_y.reshape(-1, 1))

        return model, batch_loss, features, targets

    def test_training_reduces_loss(self):
        model, batch_loss, features, targets = self._regression_setup()
        optimizer = Adam(model.parameters(), lr=0.05)
        trainer = Trainer(model, optimizer, max_epochs=20, batch_size=16, rng=0)
        history = trainer.fit(batch_loss, features, targets.reshape(-1))
        assert history.train_losses[-1] < history.train_losses[0] * 0.2

    def test_early_stopping_halts_training(self):
        model, batch_loss, features, targets = self._regression_setup(1)
        optimizer = Adam(model.parameters(), lr=0.05)
        trainer = Trainer(
            model,
            optimizer,
            early_stopping=EarlyStopping(threshold=10.0, patience=2),  # huge threshold
            max_epochs=50,
            batch_size=16,
            rng=0,
        )
        history = trainer.fit(
            batch_loss,
            features,
            targets.reshape(-1),
            validation=(features, targets.reshape(-1)),
        )
        assert history.stopped_early
        assert history.epochs_run <= 4

    def test_scheduler_is_applied(self):
        model, batch_loss, features, targets = self._regression_setup(2)
        optimizer = Adam(model.parameters(), lr=0.01)
        trainer = Trainer(
            model, optimizer, scheduler=HalvingLR(optimizer), max_epochs=3, batch_size=32, rng=0
        )
        history = trainer.fit(batch_loss, features, targets.reshape(-1))
        assert history.learning_rates[0] == pytest.approx(0.01)
        assert optimizer.lr < 0.01

    def test_model_left_in_eval_mode(self):
        model, batch_loss, features, targets = self._regression_setup(3)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), max_epochs=1, rng=0)
        trainer.fit(batch_loss, features, targets.reshape(-1))
        assert not model.training

    def test_classification_training_improves_accuracy(self):
        rng = np.random.default_rng(0)
        features = np.concatenate([rng.normal(-2, 1, size=(60, 4)), rng.normal(2, 1, size=(60, 4))])
        labels = np.array([0] * 60 + [1] * 60)
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        criterion = CrossEntropyLoss()

        def batch_loss(batch_x, batch_y):
            return criterion(model(Tensor(batch_x)), batch_y)

        trainer = Trainer(model, Adam(model.parameters(), lr=0.05), max_epochs=10, batch_size=16, rng=0)
        trainer.fit(batch_loss, features, labels)
        predictions = np.argmax(model(Tensor(features)).data, axis=1)
        assert (predictions == labels).mean() > 0.9

    def test_minibatch_iteration_covers_all_samples(self):
        model, batch_loss, features, targets = self._regression_setup(4)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), batch_size=32, rng=0)
        total = sum(len(x) for x, _ in trainer.iterate_minibatches(features, targets.reshape(-1)))
        assert total == features.shape[0]

    def test_invalid_arguments(self):
        model, _, _, _ = self._regression_setup(5)
        optimizer = Adam(model.parameters(), lr=0.01)
        with pytest.raises(ValueError):
            Trainer(model, optimizer, max_epochs=0)
        with pytest.raises(ValueError):
            Trainer(model, optimizer, batch_size=0)
