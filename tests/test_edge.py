"""Tests for the edge runtime: device budgets, transfer packaging, MAGNETO, profiler."""

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.data.activities import Activity
from repro.edge.cloud import CloudServer
from repro.edge.device import DEVICE_PROFILES, DeviceProfile, EdgeDevice
from repro.edge.magneto import MagnetoPlatform
from repro.edge.profiler import EdgeProfiler, LatencyReport
from repro.edge.transfer import exemplar_storage_bytes, package_for_edge
from repro.exceptions import EdgeResourceError, NotFittedError


class TestEdgeDevice:
    def test_storage_ledger(self):
        device = EdgeDevice(DeviceProfile("test", storage_bytes=1000, memory_bytes=1000))
        device.store("model", 400)
        device.store("support", 300)
        assert device.storage_used == 700
        assert device.storage_free == 300
        assert device.can_store(300)
        assert not device.can_store(301)

    def test_over_budget_raises(self):
        device = EdgeDevice(DeviceProfile("test", storage_bytes=100, memory_bytes=100))
        with pytest.raises(EdgeResourceError):
            device.store("model", 200)

    def test_replacing_allocation_reuses_space(self):
        device = EdgeDevice(DeviceProfile("test", storage_bytes=100, memory_bytes=100))
        device.store("model", 90)
        device.store("model", 50)  # replace, not add
        assert device.storage_used == 50

    def test_free(self):
        device = EdgeDevice(DeviceProfile("test", storage_bytes=100, memory_bytes=100))
        device.store("x", 50)
        device.free("x")
        assert device.storage_used == 0

    def test_epoch_extrapolation(self):
        device = EdgeDevice(DEVICE_PROFILES["wearable"])
        assert device.estimate_epoch_seconds(0.1) == pytest.approx(1.0)

    def test_invalid_profile(self):
        with pytest.raises(EdgeResourceError):
            DeviceProfile("bad", storage_bytes=0, memory_bytes=10)
        with pytest.raises(EdgeResourceError):
            DeviceProfile("bad", storage_bytes=10, memory_bytes=10, relative_compute=0.0)

    def test_negative_size_rejected(self):
        device = EdgeDevice()
        with pytest.raises(EdgeResourceError):
            device.store("x", -1)

    def test_infer_without_engine_explains_attach(self):
        device = EdgeDevice()
        with pytest.raises(NotFittedError, match="attach_inference"):
            device.infer(np.zeros((1, 4)))


class TestTransferPackaging:
    def test_package_contents_and_sizes(self, pretrained_pilote):
        package = package_for_edge(pretrained_pilote)
        assert package.model_bytes == pretrained_pilote.model_nbytes()
        assert package.support_set_bytes == pretrained_pilote.support_set_nbytes()
        assert package.total_bytes == (
            package.model_bytes + package.support_set_bytes + package.prototype_bytes
        )
        assert set(package.exemplar_features) == set(pretrained_pilote.exemplars.classes)
        summary = package.summary()
        assert summary["total_megabytes"] == pytest.approx(package.total_bytes / 2**20)

    def test_package_requires_pretrained(self, tiny_config):
        from repro.core.pilote import PILOTE

        with pytest.raises(NotFittedError):
            package_for_edge(PILOTE(tiny_config))

    def test_exemplar_storage_bytes_formula(self):
        # The paper's number: 200 exemplars/class x 4 classes x 80 features (float32) = 256 KB.
        assert exemplar_storage_bytes(800, 80) == 256_000
        with pytest.raises(ValueError):
            exemplar_storage_bytes(-1, 80)


class TestCloudServer:
    def test_pretrain_and_export(self, run_scenario, tiny_config):
        cloud = CloudServer(tiny_config, seed=0)
        learner = cloud.pretrain(run_scenario.old_train, run_scenario.old_validation)
        assert learner.is_pretrained
        package = cloud.export_package()
        assert package.total_bytes > 0

    def test_export_before_pretrain_raises(self, tiny_config):
        with pytest.raises(NotFittedError):
            CloudServer(tiny_config).export_package()


class TestMagnetoPlatform:
    def test_full_pipeline(self, run_scenario, tiny_config):
        platform = MagnetoPlatform(tiny_config, seed=0)
        platform.cloud_pretrain(run_scenario.old_train, run_scenario.old_validation,
                                exemplars_per_class=10)
        package = platform.deploy_to_edge()
        assert platform.device.storage_used == pytest.approx(package.total_bytes)
        platform.edge_learn_new_activity(run_scenario.new_train, run_scenario.new_validation)
        predictions = platform.edge_predict(run_scenario.test.features)
        assert predictions.shape[0] == run_scenario.test.n_samples
        assert int(Activity.RUN) in set(predictions.tolist())
        report = platform.storage_report()
        assert "support_set" in report and report["free_bytes"] > 0

    def test_pipeline_order_enforced(self, run_scenario, tiny_config):
        platform = MagnetoPlatform(tiny_config, seed=0)
        with pytest.raises(NotFittedError):
            platform.deploy_to_edge()
        with pytest.raises(NotFittedError):
            platform.edge_learn_new_activity(run_scenario.new_train)
        with pytest.raises(NotFittedError):
            platform.edge_predict(run_scenario.test.features)


class TestProfiler:
    def test_profile_increment_reports(self, pilote_copy, run_scenario):
        profiler = EdgeProfiler(inference_batch=64)
        report = profiler.profile_increment(
            pilote_copy,
            run_scenario.new_train,
            run_scenario.new_validation,
            inference_data=run_scenario.test,
        )
        assert report.epochs_run >= 1
        assert report.total_seconds > 0
        assert report.mean_epoch_seconds > 0
        assert report.inference_seconds_per_window > 0
        assert report.support_set_bytes > 0
        summary = report.summary()
        assert summary["support_set_kilobytes"] == pytest.approx(report.support_set_bytes / 1024)

    def test_scaled_to_slower_device(self):
        report = LatencyReport(epochs_run=2, total_seconds=1.0, epoch_seconds=[0.4, 0.6])
        scaled = report.scaled_to(DEVICE_PROFILES["wearable"])
        assert scaled.total_seconds == pytest.approx(10.0)
        assert scaled.mean_epoch_seconds == pytest.approx(5.0)

    def test_profile_inference_requires_trained(self, tiny_config, run_scenario):
        from repro.core.pilote import PILOTE

        with pytest.raises(NotFittedError):
            EdgeProfiler().profile_inference(PILOTE(tiny_config), run_scenario.test)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            EdgeProfiler(inference_batch=0)

    def test_max_epoch_seconds(self):
        report = LatencyReport(epochs_run=2, total_seconds=1.0, epoch_seconds=[0.4, 0.6])
        assert report.max_epoch_seconds == pytest.approx(0.6)
