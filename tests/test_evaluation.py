"""Tests for the evaluation protocol, result tables and the experiment runner."""

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.data.activities import Activity
from repro.evaluation.protocol import AggregateResult, RepeatedRounds, aggregate_values
from repro.evaluation.results import MethodResult, ResultTable
from repro.evaluation.runner import PAPER_METHODS, ExperimentRunner
from repro.evaluation.scenarios import (
    FIGURE6_SCENARIO,
    FIGURE7_SCENARIO,
    TABLE2_SCENARIOS,
    all_scenarios,
)
from repro.exceptions import ConfigurationError, DataError


class TestProtocol:
    def test_aggregate_values(self):
        aggregate = aggregate_values([0.9, 0.95, 1.0])
        assert aggregate.mean == pytest.approx(0.95)
        assert aggregate.std == pytest.approx(np.std([0.9, 0.95, 1.0]))
        assert aggregate.n_rounds == 3
        assert "±" in str(aggregate)

    def test_aggregate_empty_raises(self):
        with pytest.raises(DataError):
            aggregate_values([])

    def test_repeated_rounds_scalar(self):
        protocol = RepeatedRounds(n_rounds=4, seed=0)
        results = protocol.run(lambda rng, index: float(index))
        assert results["value"].mean == pytest.approx(1.5)

    def test_repeated_rounds_dict_and_reproducibility(self):
        def round_fn(rng, index):
            return {"a": float(rng.normal()), "b": 1.0}

        first = RepeatedRounds(3, seed=7).run(round_fn)
        second = RepeatedRounds(3, seed=7).run(round_fn)
        assert first["a"].values == second["a"].values
        assert first["b"].mean == pytest.approx(1.0)

    def test_rounds_use_independent_streams(self):
        values = RepeatedRounds(3, seed=1).run(lambda rng, index: float(rng.normal()))
        assert len(set(values["value"].values)) == 3

    def test_invalid_rounds(self):
        with pytest.raises(DataError):
            RepeatedRounds(0)


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable("Table 2", columns=["new_class", "pilote"])
        table.add_row(new_class="Run", pilote=aggregate_values([0.93, 0.94]))
        table.add_row(new_class="Walk", pilote=0.9193)
        text = table.to_text()
        assert "Table 2" in text
        assert "Run" in text and "±" in text and "0.9193" in text
        assert len(table) == 2

    def test_missing_column_raises(self):
        table = ResultTable("t", columns=["a", "b"])
        with pytest.raises(DataError):
            table.add_row(a=1.0)

    def test_column_access(self):
        table = ResultTable("t", columns=["a"])
        table.add_row(a=1.0)
        table.add_row(a=2.0)
        assert table.column("a") == [1.0, 2.0]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_csv_rows_flatten_aggregates(self):
        table = ResultTable("t", columns=["method", "accuracy"])
        table.add_row(method="pilote", accuracy=aggregate_values([0.9, 1.0]))
        rows = table.to_csv_rows()
        assert rows[0]["accuracy_mean"] == pytest.approx(0.95)
        assert "accuracy_std" in rows[0]

    def test_empty_columns_rejected(self):
        with pytest.raises(DataError):
            ResultTable("t", columns=[])


class TestScenarioSpecs:
    def test_table2_has_five_scenarios(self):
        assert len(TABLE2_SCENARIOS) == 5
        held_out = {spec.new_classes[0] for spec in TABLE2_SCENARIOS}
        assert held_out == set(Activity)

    def test_figure6_sweeps_exemplars(self):
        assert FIGURE6_SCENARIO.sweep_name == "exemplars_per_class"
        assert 200 in FIGURE6_SCENARIO.sweep_values
        assert set(FIGURE6_SCENARIO.exemplar_strategies) == {"herding", "random"}

    def test_figure7_sweeps_new_class_samples(self):
        assert FIGURE7_SCENARIO.sweep_name == "new_class_samples"
        assert FIGURE7_SCENARIO.exemplars_per_class == 200

    def test_all_scenarios_index(self):
        index = all_scenarios()
        assert set(index) == {"table2", "figure4", "figure5", "figure6", "figure7", "fleet"}

    def test_fleet_scenario_shape(self):
        from repro.evaluation.scenarios import FLEET_SCENARIO

        assert FLEET_SCENARIO.n_devices == 8
        assert FLEET_SCENARIO.traffic_pattern == "zipf"
        assert Activity.RUN in FLEET_SCENARIO.new_classes


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def comparison(self, har_dataset, tiny_config):
        runner = ExperimentRunner(tiny_config, keep_learners=True)
        return runner.run_scenario(
            har_dataset, int(Activity.RUN), exemplars_per_class=10, rng=3
        )

    def test_all_paper_methods_present(self, comparison):
        assert set(comparison.methods) == set(PAPER_METHODS)

    def test_accuracies_in_range(self, comparison):
        for result in comparison.methods.values():
            assert 0.0 <= result.accuracy <= 1.0
            assert isinstance(result, MethodResult)
            assert result.predictions.shape[0] == comparison.scenario.test.n_samples

    def test_pilote_at_least_matches_pretrained(self, comparison):
        assert comparison.accuracy_of("pilote") >= comparison.accuracy_of("pre-trained") - 0.05

    def test_learners_kept_when_requested(self, comparison):
        assert set(comparison.learners) == set(PAPER_METHODS)
        assert comparison.pretrained_learner is not None

    def test_summary_matches_methods(self, comparison):
        summary = comparison.summary()
        assert summary["pilote"] == comparison.accuracy_of("pilote")

    def test_shared_pretrained_model_reused(self, har_dataset, tiny_config):
        from repro.data.streams import build_incremental_scenario

        runner = ExperimentRunner(tiny_config, methods=("pilote",))
        scenario = build_incremental_scenario(har_dataset, [int(Activity.WALK)], rng=1)
        pretrained = runner.pretrain(scenario, exemplars_per_class=10, rng=1)
        first = runner.compare(scenario, pretrained=pretrained, rng=2)
        # The shared learner must still only know the old classes afterwards.
        assert int(Activity.WALK) not in pretrained.classes_
        assert first.accuracy_of("pilote") > 0.4

    def test_new_class_sample_cap_is_applied(self, har_dataset, tiny_config):
        runner = ExperimentRunner(tiny_config, methods=("pre-trained",))
        result = runner.run_scenario(
            har_dataset, int(Activity.WALK), exemplars_per_class=8, new_class_samples=5, rng=0
        )
        assert result.methods["pre-trained"].accuracy >= 0.0

    def test_unknown_method_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(tiny_config, methods=("pilote", "magic"))
