"""Fixture: a to_dict dataclass whose from_dict restores every field."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class RoundTripReport:
    sent: int = 0
    answered: int = 0
    samples: List[float] = field(default_factory=list, repr=False)

    def to_dict(self):
        return {"sent": self.sent, "answered": self.answered}

    @classmethod
    def from_dict(cls, payload):
        return cls(sent=payload["sent"], answered=payload["answered"])


@dataclass
class DisplayOnly:
    """No to_dict at all — the rule does not apply."""

    label: str = ""
