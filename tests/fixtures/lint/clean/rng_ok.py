"""Fixture: conforming RNG usage plus a line-level suppression."""

from repro.utils.rng import resolve_rng


def seeded(seed):
    return resolve_rng(seed).normal(size=4)


def legacy_site():
    import numpy as np

    # A justified exception, suppressed on its own line with a reason:
    return np.random.default_rng(0)  # repro: noqa[repro-rng] bit-compat fixture
