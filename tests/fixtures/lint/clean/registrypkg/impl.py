"""Fixture: concrete class present in both the registry and __all__."""


class Backend:
    name = "abstract"


class CompleteBackend(Backend):
    name = "complete"


class OptOutBackend(Backend):  # repro: noqa[repro-registry] fixture opt-out
    name = "opt-out"


BACKENDS = {CompleteBackend.name: CompleteBackend}


class Collectives:
    name = "abstract"


class WiredCollectives(Collectives):
    name = "wired"


COLLECTIVES = {}
COLLECTIVES[WiredCollectives.name] = WiredCollectives
