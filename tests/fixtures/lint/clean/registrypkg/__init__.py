"""Fixture package: registry and __all__ both complete."""

__all__ = ["CompleteBackend", "WiredCollectives"]
