"""Fixture: a file-level suppression silences every listed rule."""

# repro: noqa[repro-clock] this whole file benchmarks the raw clock

import time


def raw_a():
    return time.time()


def raw_b():
    return time.perf_counter()
