"""Fixture: typed raises, re-raises, and a non-silent broad handler."""

from repro.exceptions import ConfigurationError, ServingError, WorkerDiedError


def typed(value):
    if value < 0:
        raise ServingError("negative")
    if value > 10:
        raise ConfigurationError("too large")


def reraise(stored_error):
    if stored_error is not None:
        raise stored_error
    try:
        typed(-1)
    except ServingError:
        raise


def portable(batch):
    try:
        return batch.run()
    except Exception as error:
        # Broad but not silent: converted to a typed error.
        raise WorkerDiedError(str(error)) from error
