"""Fixture: simulated-clock module using the sanctioned seam."""

from repro.utils.clock import perf_seconds


def measured():
    start = perf_seconds()
    return perf_seconds() - start


def simulated(lane_available_at, service_seconds):
    return lane_available_at + service_seconds
