"""Fixture: callbacks collected under the lock, fired after release."""

import threading


class Notifier:
    def __init__(self):
        self._lock = threading.Lock()
        self._callbacks = []

    def fire_outside(self, result):
        with self._lock:
            pending = list(self._callbacks)
        for callback in pending:
            callback(result)
