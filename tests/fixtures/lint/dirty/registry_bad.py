"""Fixture: a concrete Executor never registered (repro-registry)."""


class Executor:
    """Protocol base (name stays 'abstract' so the base is exempt)."""

    name = "abstract"


class RegisteredExecutor(Executor):
    name = "registered"


class ForgottenExecutor(Executor):
    name = "forgotten"


class IndirectlyForgotten(ForgottenExecutor):
    """Two levels below the protocol — the closure must still find it."""

    name = "indirect"


class _PrivateExecutor(Executor):
    """Underscore prefix: internal helpers are exempt."""

    name = "private"


EXECUTORS = {RegisteredExecutor.name: RegisteredExecutor}
