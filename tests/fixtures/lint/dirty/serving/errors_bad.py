"""Fixture: untyped raises and swallowed exceptions (repro-errors)."""


def untyped_raise(value):
    if value < 0:
        raise ValueError("negative")  # not a ServingError subclass


def bare_class_raise():
    raise NotImplementedError  # bare class name, still a construction


def bare_except():
    try:
        untyped_raise(-1)
    except:  # bare except
        return None


def silent_swallow():
    try:
        untyped_raise(-1)
    except Exception:
        pass
