"""Fixture: wall-clock reads inside a simulated-clock module (repro-clock)."""

import time
from datetime import datetime
from time import perf_counter


def wall_now():
    return time.time()


def measured():
    return time.perf_counter()


def imported_seconds():
    return perf_counter()


def calendar():
    return datetime.now()
