"""Fixture: user callbacks fired while holding a lock (repro-lock-callback)."""

import threading


class Notifier:
    def __init__(self):
        self._lock = threading.Lock()
        self._callbacks = []

    def fire_held(self, result):
        with self._lock:
            for callback in self._callbacks:
                callback(result)  # user code runs under the lock

    def hook_held(self, plane):
        with self._lock:
            plane.after_drain()  # controller hook under the lock

    def future_held(self, future, on_done):
        with self._lock:
            future.add_done_callback(on_done)  # may fire inline, under the lock
