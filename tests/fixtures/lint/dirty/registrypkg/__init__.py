"""Fixture package: __all__ misses a registered concrete class."""

__all__ = ["SomethingElse"]
