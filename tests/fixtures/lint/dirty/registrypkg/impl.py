"""Fixture: in the registry dict but missing from the package __all__."""


class Backend:
    name = "abstract"


class ShadowBackend(Backend):
    name = "shadow"


BACKENDS = {ShadowBackend.name: ShadowBackend}


class Collectives:
    name = "abstract"


class UnwiredCollectives(Collectives):
    """Concrete transport that never lands in COLLECTIVES."""

    name = "unwired"


COLLECTIVES = {}
