"""Fixture: to_dict dataclasses that do not round-trip (repro-roundtrip)."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class OneWayReport:
    """Has to_dict but no from_dict at all."""

    sent: int = 0
    answered: int = 0

    def to_dict(self):
        return {"sent": self.sent, "answered": self.answered}


@dataclass
class LossyReport:
    """from_dict exists but silently drops a field."""

    sent: int = 0
    answered: int = 0
    samples: List[float] = field(default_factory=list, repr=False)

    def to_dict(self):
        return {"sent": self.sent, "answered": self.answered}

    @classmethod
    def from_dict(cls, payload):
        return cls(sent=payload["sent"])  # "answered" never restored
