"""Fixture: every flavour of raw-RNG violation (repro-rng)."""

import random

import numpy as np
from numpy.random import default_rng


def module_call():
    return np.random.normal(size=4)  # module-level np.random call


def seeded_but_raw():
    return np.random.default_rng(7)  # seeded, but bypasses resolve_rng


def stdlib_call():
    return random.random()  # global stdlib RNG


def imported_name():
    return default_rng(3)  # imported from numpy.random
