"""Tests for neural-network layers."""

import numpy as np
import pytest

from repro.autodiff.gradcheck import check_gradients
from repro.autodiff.tensor import Tensor
from repro.exceptions import ShapeError
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    build_mlp,
)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3, rng=0)
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_no_bias_option(self):
        layer = Linear(5, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_wrong_input_dim_raises(self):
        with pytest.raises(ShapeError):
            Linear(5, 3, rng=0)(Tensor(np.ones((2, 4))))

    def test_invalid_dims_raise(self):
        with pytest.raises(ShapeError):
            Linear(0, 3)

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(4, 2, rng=0)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        assert check_gradients(
            lambda t: (layer(t[0]) ** 2).sum(), [x, layer.weight, layer.bias]
        )

    def test_deterministic_with_seed(self):
        assert np.allclose(Linear(4, 2, rng=3).weight.data, Linear(4, 2, rng=3).weight.data)


class TestActivationsAndDropout:
    def test_relu_sigmoid_tanh_identity(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        assert np.allclose(ReLU()(x).data, [[0.0, 2.0]])
        assert np.allclose(Sigmoid()(x).data, 1 / (1 + np.exp([[1.0, -2.0]])))
        assert np.allclose(Tanh()(x).data, np.tanh([[-1.0, 2.0]]))
        assert np.allclose(Identity()(x).data, x.data)

    def test_dropout_inactive_in_eval(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(layer(x).data, 1.0)

    def test_dropout_scales_in_train(self):
        layer = Dropout(0.5, rng=0)
        out = layer(Tensor(np.ones((200, 10)))).data
        # Surviving units are scaled by 1/keep = 2.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_zero_probability_is_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones((2, 2)))
        assert np.allclose(layer(x).data, 1.0)


class TestBatchNorm:
    def test_training_normalises_batch(self):
        layer = BatchNorm1d(3)
        data = np.random.default_rng(0).normal(5.0, 3.0, size=(64, 3))
        out = layer(Tensor(data)).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        layer = BatchNorm1d(2, momentum=0.5)
        data = np.full((10, 2), 4.0) + np.random.default_rng(0).normal(0, 0.1, size=(10, 2))
        layer(Tensor(data))
        assert np.all(layer.running_mean > 1.0)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm1d(2)
        data = np.random.default_rng(0).normal(2.0, 1.0, size=(32, 2))
        for _ in range(20):
            layer(Tensor(data))
        layer.eval()
        out = layer(Tensor(data)).data
        assert abs(out.mean()) < 0.3

    def test_single_sample_in_training_falls_back_to_running(self):
        layer = BatchNorm1d(2)
        out = layer(Tensor(np.ones((1, 2))))
        assert out.shape == (1, 2)

    def test_wrong_feature_count_raises(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(3)(Tensor(np.ones((4, 2))))

    def test_gradients_flow_through_batchnorm(self):
        layer = BatchNorm1d(3)
        x = Tensor(np.random.default_rng(2).normal(size=(6, 3)), requires_grad=True)
        assert check_gradients(
            lambda t: (layer(t[0]) ** 2).sum(), [x, layer.gamma, layer.beta],
            atol=1e-4, rtol=1e-3,
        )


class TestSequentialAndBuildMlp:
    def test_sequential_indexing_and_len(self):
        net = Sequential(Linear(4, 3, rng=0), ReLU(), Linear(3, 2, rng=1))
        assert len(net) == 3
        assert isinstance(net[1], ReLU)

    def test_sequential_append(self):
        net = Sequential(Linear(4, 3, rng=0))
        net.append(ReLU())
        assert len(net) == 2

    def test_build_mlp_paper_backbone_structure(self):
        net = build_mlp([80, 1024, 512, 128, 64, 128], rng=0)
        # 5 Linear layers + 4 (BatchNorm + ReLU) blocks
        assert sum(isinstance(l, Linear) for l in net.layers) == 5
        assert sum(isinstance(l, BatchNorm1d) for l in net.layers) == 4
        out = net(Tensor(np.random.default_rng(0).normal(size=(4, 80))))
        assert out.shape == (4, 128)

    def test_build_mlp_without_batchnorm(self):
        net = build_mlp([8, 4, 2], batch_norm=False, rng=0)
        assert not any(isinstance(l, BatchNorm1d) for l in net.layers)

    def test_build_mlp_final_activation(self):
        net = build_mlp([8, 4, 2], final_activation="sigmoid", rng=0)
        out = net(Tensor(np.random.default_rng(0).normal(size=(3, 8)))).data
        assert np.all((out >= 0) & (out <= 1))

    def test_build_mlp_requires_two_sizes(self):
        with pytest.raises(ShapeError):
            build_mlp([8])

    def test_build_mlp_unknown_activation(self):
        with pytest.raises(ValueError):
            build_mlp([8, 4], activation="swish")
