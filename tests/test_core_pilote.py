"""Tests for the PILOTE learner (pre-training, incremental updates, inference, forgetting)."""

import copy

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.activities import Activity
from repro.exceptions import DataError, NotFittedError
from repro.metrics.forgetting import old_class_accuracy


class TestPretraining:
    def test_pretrain_learns_old_classes(self, pretrained_pilote, run_scenario):
        old_test = run_scenario.test.select_classes(run_scenario.old_classes)
        assert pretrained_pilote.evaluate(old_test) > 0.75

    def test_pretrain_builds_support_set_and_prototypes(self, pretrained_pilote, run_scenario):
        assert pretrained_pilote.exemplars.classes == run_scenario.old_classes
        assert pretrained_pilote.prototypes.classes == run_scenario.old_classes
        assert all(
            count == 15 for count in pretrained_pilote.exemplars.exemplars_per_class().values()
        )

    def test_pretrain_history_respects_epoch_cap(self, pretrained_pilote, tiny_config):
        assert pretrained_pilote.is_pretrained
        assert pretrained_pilote.old_classes == [0, 1, 3, 4]

    def test_pretrain_requires_samples(self, tiny_config):
        from repro.data.dataset import HARDataset

        learner = PILOTE(tiny_config)
        with pytest.raises(DataError):
            learner.pretrain(HARDataset(features=np.ones((1, 4)), labels=np.array([0])))

    def test_predict_before_training_raises(self, tiny_config):
        learner = PILOTE(tiny_config)
        with pytest.raises(NotFittedError):
            learner.predict(np.zeros((1, 80)))
        with pytest.raises(NotFittedError):
            learner.embed(np.zeros((1, 80)))


class TestSupportSet:
    def test_rebuild_with_different_budget(self, pilote_copy):
        pilote_copy.build_support_set(per_class=5)
        assert all(c == 5 for c in pilote_copy.exemplars.exemplars_per_class().values())

    def test_rebuild_with_random_strategy(self, pilote_copy):
        pilote_copy.build_support_set(per_class=8, strategy="random")
        assert pilote_copy.exemplars.strategy == "random"
        assert pilote_copy.exemplars.total_exemplars() == 8 * 4

    def test_build_without_pretrain_raises(self, tiny_config):
        with pytest.raises(NotFittedError):
            PILOTE(tiny_config).build_support_set()


class TestIncrementalLearning:
    def test_learn_new_class_extends_known_classes(self, incremented_pilote):
        assert int(Activity.RUN) in incremented_pilote.classes_
        assert incremented_pilote.new_classes == [int(Activity.RUN)]
        assert len(incremented_pilote.classes_) == 5

    def test_new_class_gets_exemplars_and_prototype(self, incremented_pilote):
        assert int(Activity.RUN) in incremented_pilote.exemplars.classes
        assert int(Activity.RUN) in incremented_pilote.prototypes.classes

    def test_accuracy_on_full_test_set(self, incremented_pilote, run_scenario):
        assert incremented_pilote.evaluate(run_scenario.test) > 0.6

    def test_new_class_is_actually_learned(self, incremented_pilote, run_scenario):
        new_test = run_scenario.test.select_classes([int(Activity.RUN)])
        assert incremented_pilote.evaluate(new_test) > 0.5

    def test_old_classes_not_catastrophically_forgotten(
        self, pretrained_pilote, incremented_pilote, run_scenario
    ):
        old_test = run_scenario.test.select_classes(run_scenario.old_classes)
        before = pretrained_pilote.evaluate(old_test)
        after = incremented_pilote.evaluate(old_test)
        assert after > before - 0.25

    def test_learn_without_pretrain_raises(self, tiny_config, run_scenario):
        learner = PILOTE(tiny_config)
        with pytest.raises(NotFittedError):
            learner.learn_new_classes(run_scenario.new_train)

    def test_learning_known_class_raises(self, pilote_copy, run_scenario):
        known = run_scenario.old_train.select_classes([run_scenario.old_classes[0]])
        with pytest.raises(DataError):
            pilote_copy.learn_new_classes(known)

    def test_learn_with_empty_support_set_raises(self, pilote_copy, run_scenario):
        pilote_copy.exemplars._exemplars.clear()
        with pytest.raises(NotFittedError):
            pilote_copy.learn_new_classes(run_scenario.new_train)

    def test_predictions_cover_all_classes(self, incremented_pilote, run_scenario):
        predictions = incremented_pilote.predict(run_scenario.test.features)
        assert set(np.unique(predictions)).issubset(set(incremented_pilote.classes_))

    def test_predict_scores_shape(self, incremented_pilote, run_scenario):
        scores = incremented_pilote.predict_scores(run_scenario.test.features[:10])
        assert scores.shape == (10, 5)
        assert np.allclose(scores.sum(axis=1), 1.0)


class TestDistillationEffect:
    def test_pilote_beats_plain_retraining_on_old_classes(self, pretrained_pilote, run_scenario):
        """The core claim of the paper at test scale: distillation (α=0.5) preserves
        old-class accuracy at least as well as re-training without it (α=0)."""
        pilote = copy.deepcopy(pretrained_pilote)
        retrained = copy.deepcopy(pretrained_pilote)
        retrained.config = retrained.config.with_overrides(alpha=0.0)
        pilote.learn_new_classes(run_scenario.new_train, run_scenario.new_validation)
        retrained.learn_new_classes(run_scenario.new_train, run_scenario.new_validation)
        test = run_scenario.test
        pilote_old = old_class_accuracy(
            test.labels, pilote.predict(test.features), run_scenario.old_classes
        )
        retrained_old = old_class_accuracy(
            test.labels, retrained.predict(test.features), run_scenario.old_classes
        )
        assert pilote_old >= retrained_old - 0.05

    def test_teacher_is_frozen_copy(self, incremented_pilote):
        assert incremented_pilote.teacher is not None
        assert not incremented_pilote.teacher.training


class TestResourceAccounting:
    def test_memory_footprint_keys(self, incremented_pilote):
        footprint = incremented_pilote.memory_footprint()
        assert footprint["total_bytes"] == (
            footprint["model_bytes"]
            + footprint["support_set_bytes"]
            + footprint["prototype_bytes"]
        )
        assert footprint["support_set_bytes"] == incremented_pilote.support_set_nbytes()

    def test_support_set_bytes_scale_with_budget(self, pilote_copy):
        before = pilote_copy.support_set_nbytes()
        pilote_copy.build_support_set(per_class=5)
        assert pilote_copy.support_set_nbytes() < before

    def test_model_bytes_positive(self, pretrained_pilote):
        assert pretrained_pilote.model_nbytes() > 0
        assert PILOTE(PiloteConfig.edge_lightweight()).model_nbytes() == 0
