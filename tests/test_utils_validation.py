"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DataError, ShapeError
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_feature_matrix,
    check_finite,
    check_labels,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_accepts_lists(self):
        result = check_array([[1, 2], [3, 4]], ndim=2)
        assert result.shape == (2, 2)
        assert result.dtype == np.float64

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ShapeError):
            check_array([1, 2, 3], ndim=2)

    def test_rejects_empty_by_default(self):
        with pytest.raises(DataError):
            check_array([])

    def test_allows_empty_when_requested(self):
        assert check_array([], allow_empty=True).size == 0

    def test_rejects_non_numeric(self):
        with pytest.raises(DataError):
            check_array([["a", "b"]])

    def test_copy_flag_returns_new_array(self):
        original = np.ones((2, 2))
        copied = check_array(original, copy=True)
        copied[0, 0] = 5.0
        assert original[0, 0] == 1.0


class TestCheckFinite:
    def test_passes_finite(self):
        array = np.ones(3)
        assert check_finite(array) is array

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            check_finite(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(DataError):
            check_finite(np.array([1.0, np.inf]))


class TestCheckLabels:
    def test_integer_labels_pass(self):
        labels = check_labels([0, 1, 2])
        assert labels.dtype == np.int64

    def test_float_integer_values_are_cast(self):
        labels = check_labels(np.array([0.0, 1.0, 2.0]))
        assert labels.dtype == np.int64

    def test_non_integer_floats_rejected(self):
        with pytest.raises(DataError):
            check_labels([0.5, 1.0])

    def test_wrong_length_rejected(self):
        with pytest.raises(ShapeError):
            check_labels([0, 1], n_samples=3)

    def test_2d_rejected(self):
        with pytest.raises(ShapeError):
            check_labels([[0], [1]])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            check_labels([])


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert check_positive(1.5) == 1.5

    def test_check_positive_rejects_zero_when_strict(self):
        with pytest.raises(DataError):
            check_positive(0.0)

    def test_check_positive_non_strict_allows_zero(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_check_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(DataError):
            check_probability(1.5)
        with pytest.raises(DataError):
            check_probability(-0.1)


class TestCompositeChecks:
    def test_consistent_length_passes(self):
        check_consistent_length([1, 2], [3, 4])

    def test_consistent_length_fails(self):
        with pytest.raises(ShapeError):
            check_consistent_length([1, 2], [3])

    def test_feature_matrix_with_labels(self):
        features, labels = check_feature_matrix([[1.0, 2.0], [3.0, 4.0]], [0, 1])
        assert features.shape == (2, 2)
        assert labels.tolist() == [0, 1]

    def test_feature_matrix_label_mismatch(self):
        with pytest.raises(ShapeError):
            check_feature_matrix([[1.0, 2.0]], [0, 1])

    def test_feature_matrix_rejects_nan(self):
        with pytest.raises(DataError):
            check_feature_matrix([[np.nan, 1.0]], [0])
