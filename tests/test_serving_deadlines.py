"""Deadline-aware serving: EDF scheduling, SLO reporting, correctness sweep.

Covers the deadline seam end to end (scheduler queue orders, admission
control, traffic-generator deadline distributions, CLI flags) plus the
serving-path regression fixes: failed-batch accounting, re-entrant
``drain()``, request validation, per-segment load refresh and the
out-of-order ``_queue_batch`` walk-back.
"""

import time
from collections import deque

import numpy as np
import pytest

from repro.cli import build_parser
from repro.exceptions import (
    ConfigurationError,
    DataError,
    DeadlineExceededError,
    InvalidRequestError,
)
from repro.fleet import FleetCoordinator, InferenceRequest, TrafficGenerator, WorkloadSpec
from repro.serving import (
    EventLoopScheduler,
    LocalServingDevice,
    PredictRequest,
    SCHEDULING_ORDERS,
    serve,
)
from repro.serving.routing import LeastLoadedRouting, PowerOfTwoRouting


def _slow_infer(seconds=0.002):
    """A deterministic-enough device function with a measurable service time."""

    def infer(windows):
        time.sleep(seconds)
        return np.zeros(windows.shape[0], dtype=np.int64)

    return infer


def _scheduler(scheduling="fifo", infer=None, n_devices=1):
    devices = [
        LocalServingDevice(infer or _slow_infer(), device_id=i)
        for i in range(n_devices)
    ]
    return EventLoopScheduler(devices, scheduling=scheduling, seed=0)


def _request(user_id, arrival=0.0, deadline=None, n_windows=1, n_features=3):
    return PredictRequest(
        user_id=user_id,
        features=np.full((n_windows, n_features), float(user_id)),
        arrival_seconds=arrival,
        deadline_seconds=deadline,
    )


class TestEdfScheduling:
    def test_unknown_scheduling_rejected(self):
        assert SCHEDULING_ORDERS == ("fifo", "edf")
        with pytest.raises(ConfigurationError, match="scheduling"):
            _scheduler(scheduling="lifo")

    def test_edf_serves_earliest_deadline_first(self):
        scheduler = _scheduler("edf")
        relaxed = scheduler.submit(_request(0, deadline=100.0))
        urgent = scheduler.submit(_request(1, deadline=1.0))
        deadline_less = scheduler.submit(_request(2))
        scheduler.drain()
        completions = [
            f.result().completed_seconds for f in (urgent, relaxed, deadline_less)
        ]
        assert completions == sorted(completions)
        assert completions[0] < completions[1] < completions[2]

    def test_fifo_coalesces_mixed_deadlines_by_arrival(self):
        scheduler = _scheduler("fifo")
        futures = [
            scheduler.submit(_request(0, deadline=100.0)),
            scheduler.submit(_request(1, deadline=1.0)),
            scheduler.submit(_request(2)),
        ]
        scheduler.drain()
        report = scheduler.report()
        assert sum(s.batches for s in report.per_device.values()) == 1
        completions = {f.result().completed_seconds for f in futures}
        assert len(completions) == 1  # one engine call, shared completion

    def test_edf_deadline_less_requests_fall_back_to_arrival_order(self):
        scheduler = _scheduler("edf")
        second = scheduler.submit(_request(0, arrival=0.5))
        first = scheduler.submit(_request(1, arrival=0.0))
        scheduler.drain()
        assert (
            first.result().completed_seconds < second.result().completed_seconds
        )

    def test_edf_matches_fifo_on_deadline_less_traffic(self, pretrained_pilote, run_scenario):
        pool = run_scenario.test.features
        outputs = {}
        for scheduling in SCHEDULING_ORDERS:
            client = serve(pretrained_pilote, scheduling=scheduling)
            assert client.scheduling == scheduling
            futures = [
                client.submit(_request(u, n_features=pool.shape[1]))
                for u in range(4)
            ]
            client.drain()
            outputs[scheduling] = np.concatenate(
                [f.result().class_ids for f in futures]
            )
        assert np.array_equal(outputs["fifo"], outputs["edf"])

    def test_edf_coalesces_shared_deadline_class(self):
        scheduler = _scheduler("edf")
        scheduler.submit_many(
            [_request(u, deadline=5.0) for u in range(6)]
            + [_request(9, deadline=50.0)]
        )
        scheduler.drain()
        report = scheduler.report()
        # One batch per (arrival, deadline) class, not one per request.
        assert sum(s.batches for s in report.per_device.values()) == 2
        assert report.total_requests == 7

    def test_client_describe_includes_scheduling(self, pretrained_pilote):
        client = serve(pretrained_pilote, scheduling="edf")
        assert client.describe()["scheduling"] == "edf"

    def test_edf_under_backlog_reduces_expiries_vs_fifo(self):
        """The tentpole story in miniature: urgent requests survive EDF."""

        def run(scheduling):
            scheduler = _scheduler(scheduling, infer=_slow_infer(0.004))
            futures = []
            # Tick 0 warms the lane; ticks arrive faster than service.
            for tick in range(6):
                arrival = tick * 1e-4
                futures.append(
                    scheduler.submit(_request(tick, arrival=arrival, deadline=arrival + 0.015))
                )
                futures.append(
                    scheduler.submit(_request(100 + tick, arrival=arrival, deadline=arrival + 100.0))
                )
            scheduler.drain()
            report = scheduler.report()
            in_deadline = report.total_deadline_requests - report.total_deadline_misses
            return in_deadline, report.total_expired

        # Real sleeps feed the measured clock, so scheduler-independent
        # jitter can expire one extra request on either side of the
        # comparison (~5-10% of runs on a loaded machine).  A genuine EDF
        # regression fails every attempt; jitter does not survive three.
        for attempt in range(3):
            fifo_in, fifo_expired = run("fifo")
            edf_in, edf_expired = run("edf")
            if edf_in >= fifo_in and edf_expired <= fifo_expired:
                break
        assert edf_in >= fifo_in
        assert edf_expired <= fifo_expired


class TestAdmissionControl:
    def test_unmeetable_deadline_rejected_at_submit(self):
        scheduler = _scheduler("fifo")
        scheduler.submit(_request(0, n_windows=8))
        scheduler.drain()  # advances the lane's simulated backlog
        late = scheduler.submit(_request(1, arrival=1e-9, deadline=2e-9))
        assert late.done()  # failed immediately, never queued
        assert scheduler.pending_requests == 0
        assert isinstance(late.exception(), DeadlineExceededError)
        with pytest.raises(DeadlineExceededError, match="admission"):
            late.result()

    def test_rejected_callback_fires_immediately(self):
        scheduler = _scheduler("fifo")
        scheduler.submit(_request(0))
        scheduler.drain()
        late = scheduler.submit(_request(1, arrival=1e-9, deadline=2e-9))
        seen = []
        late.add_done_callback(seen.append)
        assert seen == [late]

    def test_rejections_counted_as_expired_with_subset(self):
        scheduler = _scheduler("fifo")
        scheduler.submit(_request(0, n_windows=8))
        scheduler.drain()
        scheduler.submit(_request(1, arrival=1e-9, deadline=2e-9))
        report = scheduler.report()
        assert report.total_rejected == 1
        assert report.total_expired == 1  # rejections are a subset of expired
        assert report.total_requests == 1  # only the served request

    def test_meetable_deadline_not_rejected(self):
        scheduler = _scheduler("fifo")
        pending = scheduler.submit(_request(0, deadline=1e6))
        assert not pending.done()
        scheduler.drain()
        assert pending.exception() is None


class TestSloReporting:
    def test_per_device_deadline_misses_and_breakdown(self):
        scheduler = _scheduler("fifo")
        # Service starts at 0 (in time) but completes after this deadline.
        missed = scheduler.submit(_request(0, deadline=1e-9))
        scheduler.drain()
        assert missed.result().deadline_missed
        report = scheduler.report()
        stats = next(iter(report.per_device.values()))
        assert stats.deadline_requests == 1 and stats.deadline_misses == 1
        assert report.total_deadline_misses == 1
        assert stats.summary()["deadline_misses"] == 1.0
        breakdown = report.deadline_breakdown()
        assert breakdown == {"served": 0, "missed": 1, "expired": 0, "failed": 0}

    def test_deadline_attainment_counts_expiries(self):
        scheduler = _scheduler("fifo")
        served = scheduler.submit(_request(0, n_windows=16, deadline=1e6))
        expired = scheduler.submit(_request(1, arrival=1e-7, deadline=2e-7))
        scheduler.drain()
        assert served.exception() is None
        assert isinstance(expired.exception(), DeadlineExceededError)
        report = scheduler.report()
        assert report.deadline_attainment == pytest.approx(0.5)
        assert report.deadline_breakdown()["expired"] == 1

    def test_deadline_attainment_trivially_one_without_deadlines(self):
        scheduler = _scheduler("fifo")
        scheduler.submit(_request(0))
        scheduler.drain()
        assert scheduler.report().deadline_attainment == 1.0

    def test_slo_attainment_latency_target(self):
        scheduler = _scheduler("fifo")
        scheduler.submit_many([_request(u) for u in range(4)])
        scheduler.drain()
        report = scheduler.report()
        assert report.slo_attainment(1e6) == 1.0
        assert report.slo_attainment(0.0) == 0.0
        loose = report.slo_attainment(report.p99_latency_seconds)
        tight = report.slo_attainment(report.latency_percentile(50.0) / 2)
        assert 0.0 <= tight <= loose <= 1.0

    def test_slo_attainment_counts_expired_and_failed(self):
        scheduler = _scheduler("fifo")
        scheduler.submit(_request(0, n_windows=16))
        scheduler.submit(_request(1, arrival=1e-7, deadline=2e-7))
        scheduler.drain()
        # 1 served (within a huge target) + 1 expired -> 50% attainment.
        assert scheduler.report().slo_attainment(1e6) == pytest.approx(0.5)

    def test_empty_report_slo_is_one(self):
        scheduler = _scheduler("fifo")
        assert scheduler.report().slo_attainment(1.0) == 1.0


class TestFailedBatchAccounting:
    def test_failed_batch_keeps_report_invariant(self):
        def raising(windows):
            raise RuntimeError("device on fire")

        scheduler = _scheduler(infer=raising)
        futures = scheduler.submit_many([_request(u) for u in range(3)])
        scheduler.drain()
        for future in futures:
            assert isinstance(future.exception(), RuntimeError)
            with pytest.raises(RuntimeError, match="on fire"):
                future.result()
        report = scheduler.report()
        assert report.total_failed == 3
        assert report.total_requests == 0
        assert report.total_requests == sum(
            s.requests for s in report.per_device.values()
        )

    def test_mixed_failure_and_success_accounting(self):
        calls = {"n": 0}

        def flaky(windows):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first batch dies")
            return np.zeros(windows.shape[0], dtype=np.int64)

        scheduler = _scheduler(infer=flaky)
        failed = scheduler.submit_many([_request(u, arrival=0.0) for u in range(2)])
        served = scheduler.submit_many([_request(u, arrival=1.0) for u in range(3)])
        scheduler.drain()
        assert all(isinstance(f.exception(), RuntimeError) for f in failed)
        assert all(f.exception() is None for f in served)
        report = scheduler.report()
        assert report.total_failed == 2
        assert report.total_requests == 3
        assert report.total_requests == sum(
            s.requests for s in report.per_device.values()
        )
        assert report.summary()["total_failed"] == 2.0


class TestReentrantDrain:
    def test_callback_chained_request_resolves_in_one_drain(self, pretrained_pilote, run_scenario):
        pool = run_scenario.test.features
        client = serve(pretrained_pilote)
        chained = []

        def chain(_future):
            chained.append(client.submit(
                PredictRequest(user_id=7, features=pool[:2])
            ))

        first = client.submit(PredictRequest(user_id=0, features=pool[:2]))
        first.add_done_callback(chain)
        client.drain()
        assert first.done()
        assert len(chained) == 1 and chained[0].done()
        assert client.pending_requests == 0
        assert chained[0].result().n_windows == 2

    def test_callback_chain_across_fleet_lanes(self, tiny_config, pretrained_pilote, run_scenario):
        from repro.edge.transfer import package_for_edge

        pool = run_scenario.test.features
        fleet = FleetCoordinator(tiny_config, seed=0)
        fleet.provision(3)
        fleet.deploy(package_for_edge(pretrained_pilote))
        client = serve(fleet, seed=1)
        followups = []

        def chain(_future):
            # Fan a follow-up onto every lane, including ones the event
            # loop already popped and dropped from its heap.
            followups.extend(
                client.submit_many([
                    InferenceRequest(user_id=u, features=pool[:1])
                    for u in range(12)
                ])
            )

        first = client.submit(InferenceRequest(user_id=0, features=pool[:1]))
        first.add_done_callback(chain)
        client.drain()
        assert len(followups) == 12
        assert all(f.done() for f in followups)
        assert client.pending_requests == 0

    def test_nested_drain_from_callback_is_safe(self, pretrained_pilote, run_scenario):
        pool = run_scenario.test.features
        client = serve(pretrained_pilote)
        first = client.submit(PredictRequest(
            user_id=0, features=pool[:1], arrival_seconds=0.0
        ))
        second = client.submit(PredictRequest(
            user_id=1, features=pool[:1], arrival_seconds=1.0
        ))
        resolved = []

        def nested(_future):
            # result() on a still-pending future re-enters drain().
            resolved.append(second.result())

        first.add_done_callback(nested)
        client.drain()
        assert first.done() and second.done()
        assert resolved[0].n_windows == 1
        assert client.pending_requests == 0


class TestRequestValidation:
    def test_zero_feature_batch_rejected_typed(self):
        with pytest.raises(InvalidRequestError, match="zero-feature"):
            PredictRequest(user_id=0, features=np.empty((3, 0)))

    def test_features_frozen_against_post_submit_mutation(self):
        windows = np.ones((2, 4))
        request = PredictRequest(user_id=0, features=windows)
        assert not request.features.flags.writeable
        with pytest.raises(ValueError):
            request.features[0, 0] = 99.0

    def test_promoted_window_also_frozen(self):
        request = PredictRequest(user_id=0, features=np.ones(4))
        assert request.features.shape == (1, 4)
        with pytest.raises(ValueError):
            request.features[:] = 0.0

    def test_inference_request_deadline_validation(self):
        with pytest.raises(DataError, match="deadline"):
            InferenceRequest(
                user_id=0, features=np.ones((1, 3)),
                arrival_seconds=2.0, deadline_seconds=1.0,
            )
        request = InferenceRequest(
            user_id=0, features=np.ones((1, 3)),
            arrival_seconds=1.0, deadline_seconds=2.0,
        )
        assert request.deadline_seconds == 2.0


class _StubLoads:
    """Stand-in scheduler whose load estimate is a pure function of time."""

    def __init__(self, loads_by_now):
        self._loads_by_now = loads_by_now

    def lane_loads(self, now):
        return np.asarray(self._loads_by_now(now), dtype=np.float64).copy()


class _Arrival:
    def __init__(self, user_id, arrival):
        self.user_id = user_id
        self.arrival_seconds = arrival


class TestSegmentedLoadRefresh:
    def test_least_loaded_refreshes_estimate_per_arrival_segment(self):
        policy = LeastLoadedRouting()
        policy.bind(2, np.random.default_rng(0))
        stub = _StubLoads(lambda now: [100.0, 0.0] if now < 50.0 else [0.0, 0.0])
        requests = [_Arrival(u, 0.0) for u in range(4)] + [
            _Arrival(u, 100.0) for u in range(4, 8)
        ]
        user_ids = np.arange(8)
        assignment = policy.assign_batch(requests, user_ids, stub)
        # Early segment avoids the backlogged lane 0; by the late segment the
        # backlog has drained, and only this call's own four assignments on
        # lane 1 remain - so the late segment lands on lane 0.
        assert assignment.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_least_loaded_stale_snapshot_would_dogpile(self):
        """Same stream, frozen clock: the old single-snapshot behaviour."""
        policy = LeastLoadedRouting()
        policy.bind(2, np.random.default_rng(0))
        stub = _StubLoads(lambda now: [100.0, 0.0])  # backlog never decays
        requests = [_Arrival(u, 0.0) for u in range(4)] + [
            _Arrival(u, 100.0) for u in range(4, 8)
        ]
        assignment = policy.assign_batch(requests, np.arange(8), stub)
        assert assignment.tolist() == [1] * 8

    def test_p2c_late_segment_sees_refreshed_loads(self):
        # Seed 4 gives every early user lane 1 (their less-loaded candidate
        # under the huge stale backlog); the numpy Generator stream is stable,
        # so the expectation is deterministic.
        policy = PowerOfTwoRouting()
        policy.bind(2, np.random.default_rng(4))
        stub = _StubLoads(lambda now: [1000.0, 0.0] if now < 50.0 else [0.0, 0.0])
        requests = [_Arrival(u, 0.0) for u in range(6)] + [
            _Arrival(u, 100.0) for u in range(6, 12)
        ]
        assignment = policy.assign_batch(requests, np.arange(12), stub)
        early, late = assignment[:6].tolist(), assignment[6:].tolist()
        # Early picks dodge the backlogged lane 0; once the backlog decays,
        # lane 0 must win picks again instead of staying dog-piled on lane 1.
        assert set(early) == {1}
        assert late.count(0) >= 2

    def test_least_loaded_respects_lane_subset_per_segment(self):
        policy = LeastLoadedRouting()
        policy.bind(3, np.random.default_rng(0))
        stub = _StubLoads(lambda now: [50.0, 0.0, 0.0] if now < 5.0 else [0.0, 0.0, 0.0])
        requests = [_Arrival(u, 0.0) for u in range(2)] + [_Arrival(u, 10.0) for u in range(2, 4)]
        assignment = policy.assign_batch(
            requests, np.arange(4), stub, lanes=np.array([0, 2])
        )
        assert set(assignment.tolist()) <= {0, 2}
        assert assignment[:2].tolist() == [2, 2]
        assert 0 in assignment[2:].tolist()


class TestQueueWalkBack:
    def test_walk_back_inserts_and_coalesces_mid_queue(self):
        from repro.serving.scheduler import _queue_batch

        queue = deque()
        first = _queue_batch(queue, 0.0, None)
        tail = _queue_batch(queue, 3.0, None)
        middle = _queue_batch(queue, 1.0, None)  # walks back past the tail
        assert [batch.arrival for batch in queue] == [0.0, 1.0, 3.0]
        assert _queue_batch(queue, 1.0, None) is middle  # coalesce mid-queue
        assert _queue_batch(queue, 3.0, None) is tail  # coalesce at tail
        head = _queue_batch(queue, -1.0, None)  # walks back to the head
        assert queue[0] is head
        assert _queue_batch(queue, 0.0, None) is first
        assert [batch.arrival for batch in queue] == [-1.0, 0.0, 1.0, 3.0]

    def test_out_of_order_submissions_not_blocked_or_misbatched(
        self, pretrained_pilote, run_scenario
    ):
        pool = run_scenario.test.features
        client = serve(pretrained_pilote)
        late = client.submit(PredictRequest(
            user_id=0, features=pool[:3], arrival_seconds=2.0
        ))
        early = client.submit(PredictRequest(
            user_id=1, features=pool[3:4], arrival_seconds=0.0, deadline_seconds=1.9
        ))
        middle = client.submit(PredictRequest(
            user_id=2, features=pool[4:6], arrival_seconds=1.0
        ))
        sibling = client.submit(PredictRequest(  # coalesces with `middle`
            user_id=3, features=pool[6:8], arrival_seconds=1.0
        ))
        client.drain()
        assert early.exception() is None  # not spuriously deadline-expired
        # Served in arrival order despite submission order.
        assert (
            early.result().completed_seconds
            <= middle.result().completed_seconds
            <= late.result().completed_seconds
        )
        # Coalesced siblings share one engine call and keep their own slices.
        assert middle.result().completed_seconds == sibling.result().completed_seconds
        assert middle.result().n_windows == 2 and sibling.result().n_windows == 2
        assert late.result().n_windows == 3 and early.result().n_windows == 1
        expected = pretrained_pilote.predict(pool[4:6])
        assert np.array_equal(middle.result().class_ids, expected)


class TestTrafficDeadlines:
    @pytest.fixture()
    def pool(self, run_scenario):
        return run_scenario.test.features

    def test_deadline_stream_is_seeded_and_absolute(self, pool):
        spec = WorkloadSpec(
            n_users=8, requests_per_tick=16, n_ticks=3, tick_seconds=0.5,
            deadline_seconds=0.2, deadline_multipliers=(1.0, 40.0),
        )
        first = TrafficGenerator(pool, spec, seed=11).requests()
        second = TrafficGenerator(pool, spec, seed=11).requests()
        assert [r.deadline_seconds for r in first] == [
            r.deadline_seconds for r in second
        ]
        for request in first:
            relative = request.deadline_seconds - request.arrival_seconds
            assert relative in (pytest.approx(0.2), pytest.approx(8.0))
        classes = {
            round(r.deadline_seconds - r.arrival_seconds, 6) for r in first
        }
        assert classes == {0.2, 8.0}

    def test_deadline_fraction_mixes_in_deadline_less(self, pool):
        spec = WorkloadSpec(
            n_users=8, requests_per_tick=64, n_ticks=2,
            deadline_seconds=1.0, deadline_fraction=0.5,
        )
        requests = TrafficGenerator(pool, spec, seed=3).requests()
        carried = [r for r in requests if r.deadline_seconds is not None]
        assert 0 < len(carried) < len(requests)

    def test_disabled_deadlines_leave_stream_unchanged(self, pool):
        base = WorkloadSpec(n_users=8, requests_per_tick=8, n_ticks=2)
        plain = TrafficGenerator(pool, base, seed=5).requests()
        assert all(r.deadline_seconds is None for r in plain)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -1.0},
            {"deadline_seconds": 1.0, "deadline_multipliers": ()},
            {"deadline_seconds": 1.0, "deadline_multipliers": (1.0, -2.0)},
            {"deadline_seconds": 1.0, "deadline_fraction": 1.5},
        ],
    )
    def test_invalid_deadline_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_deadline_traffic_through_edf_client(self, pretrained_pilote, pool):
        spec = WorkloadSpec(
            n_users=16, requests_per_tick=32, n_ticks=3,
            deadline_seconds=10.0, deadline_multipliers=(1.0, 4.0),
        )
        client = serve(pretrained_pilote, scheduling="edf")
        futures = []
        for requests in TrafficGenerator(pool, spec, seed=2).ticks():
            futures.extend(client.submit_many(requests))
        client.drain()
        assert all(f.exception() is None for f in futures)
        report = client.report()
        assert report.total_deadline_requests == 96
        assert report.total_requests == 96


class TestCliFlags:
    def test_scheduling_and_deadline_flags_parse(self):
        arguments = build_parser().parse_args(
            ["fleet-sim", "--scheduling", "edf", "--deadline-ms", "5.0"]
        )
        assert arguments.scheduling == "edf"
        assert arguments.deadline_ms == 5.0
        assert build_parser().parse_args(["serve", "--scheduling", "fifo"]).scheduling == "fifo"

    def test_unknown_scheduling_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet-sim", "--scheduling", "lifo"])

    def test_deadline_ms_rejected_for_serve_subcommand(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--deadline-ms", "5"])
        assert "--deadline-ms only applies to fleet-sim" in capsys.readouterr().err
