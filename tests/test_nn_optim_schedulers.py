"""Tests for optimisers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import ConstantLR, ExponentialDecayLR, HalvingLR, StepLR


def _quadratic_step(optimizer, parameter):
    """One optimisation step on f(w) = ||w||^2 / 2 (gradient = w)."""
    optimizer.zero_grad()
    loss = (parameter * parameter).sum() * 0.5
    loss.backward()
    optimizer.step()


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        parameter = Parameter(np.array([4.0, -2.0]))
        optimizer = SGD([parameter], lr=0.1)
        initial = float((parameter.data**2).sum())
        for _ in range(50):
            _quadratic_step(optimizer, parameter)
        assert float((parameter.data**2).sum()) < initial * 1e-3

    def test_sgd_momentum_converges(self):
        parameter = Parameter(np.array([4.0, -2.0]))
        optimizer = SGD([parameter], lr=0.05, momentum=0.9)
        for _ in range(250):
            _quadratic_step(optimizer, parameter)
        assert np.allclose(parameter.data, 0.0, atol=1e-2)

    def test_adam_descends_quadratic(self):
        parameter = Parameter(np.array([4.0, -2.0, 1.0]))
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(120):
            _quadratic_step(optimizer, parameter)
        assert np.allclose(parameter.data, 0.0, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_skip_parameters_without_grad(self):
        used = Parameter(np.array([1.0]))
        unused = Parameter(np.array([5.0]))
        optimizer = Adam([used, unused], lr=0.1)
        _quadratic_step(optimizer, used)
        assert unused.data[0] == pytest.approx(5.0)

    def test_invalid_hyperparameters(self):
        parameter = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([parameter], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([parameter], lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_set_lr_validation(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=0.1)
        with pytest.raises(ValueError):
            optimizer.set_lr(0.0)

    def test_base_step_not_implemented(self):
        optimizer = Optimizer([Parameter(np.array([1.0]))], lr=0.1)
        with pytest.raises(NotImplementedError):
            optimizer.step()


class TestSchedulers:
    def _optimizer(self, lr=0.01):
        return SGD([Parameter(np.array([1.0]))], lr=lr)

    def test_halving_schedule_matches_paper(self):
        optimizer = self._optimizer(0.01)
        scheduler = HalvingLR(optimizer)
        values = [scheduler.step() for _ in range(3)]
        assert values == pytest.approx([0.005, 0.0025, 0.00125])
        assert optimizer.lr == pytest.approx(0.00125)

    def test_halving_respects_floor(self):
        optimizer = self._optimizer(0.01)
        scheduler = HalvingLR(optimizer, min_lr=1e-3)
        for _ in range(20):
            scheduler.step()
        assert optimizer.lr == pytest.approx(1e-3)

    def test_constant_schedule(self):
        optimizer = self._optimizer(0.05)
        scheduler = ConstantLR(optimizer)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)

    def test_step_schedule(self):
        optimizer = self._optimizer(1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_exponential_decay(self):
        optimizer = self._optimizer(1.0)
        scheduler = ExponentialDecayLR(optimizer, decay=0.5)
        assert scheduler.step() == pytest.approx(0.5)
        assert scheduler.step() == pytest.approx(0.25)

    def test_current_lr_property(self):
        optimizer = self._optimizer(0.3)
        scheduler = ConstantLR(optimizer)
        assert scheduler.current_lr == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda opt: HalvingLR(opt, min_lr=0.0),
            lambda opt: StepLR(opt, step_size=0),
            lambda opt: StepLR(opt, gamma=0.0),
            lambda opt: ExponentialDecayLR(opt, decay=1.5),
        ],
    )
    def test_invalid_scheduler_arguments(self, factory):
        with pytest.raises(ValueError):
            factory(self._optimizer())
