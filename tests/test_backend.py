"""Tests for the compute backend: dtype policy, op registry, workspace, kernels."""

import numpy as np
import pytest

from repro.autodiff.gradcheck import check_gradients
from repro.autodiff.tensor import Tensor
from repro.backend import (
    NumpyBackend,
    Workspace,
    default_dtype,
    get_backend,
    get_op,
    is_registered,
    list_ops,
    precision,
    resolve_dtype,
    set_default_dtype,
)
from repro.backend.registry import OpContext
from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.streams import build_incremental_scenario
from repro.data.synthetic import make_feature_dataset
from repro.exceptions import ConfigurationError, GradientError, ShapeError


class TestDtypePolicy:
    def test_default_is_float64_reference_profile(self):
        assert default_dtype() == np.dtype(np.float64)

    def test_precision_context_switches_and_restores(self):
        assert Tensor([1.0]).data.dtype == np.float64
        with precision("edge"):
            assert default_dtype() == np.dtype(np.float32)
            assert Tensor([1.0]).data.dtype == np.float32
            with precision("float64"):
                assert Tensor([1.0]).data.dtype == np.float64
            assert Tensor([1.0]).data.dtype == np.float32
        assert Tensor([1.0]).data.dtype == np.float64

    def test_precision_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with precision("float32"):
                raise RuntimeError("boom")
        assert default_dtype() == np.dtype(np.float64)

    def test_set_default_dtype_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.dtype(np.float64)
            assert default_dtype() == np.dtype(np.float32)
        finally:
            set_default_dtype(previous)

    def test_resolve_dtype_rejects_unsupported(self):
        with pytest.raises(ConfigurationError):
            resolve_dtype("int32")
        with pytest.raises(ConfigurationError):
            resolve_dtype(np.int64)

    def test_interior_nodes_follow_leaf_dtype_not_policy(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True, dtype="float64")
        with precision("edge"):
            out = (x * x).sum()
        assert out.data.dtype == np.float64

    def test_explicit_dtype_overrides_policy(self):
        with precision("edge"):
            assert Tensor([1.0], dtype="float64").data.dtype == np.float64


class TestOpRegistry:
    def test_core_primitives_are_registered(self):
        names = list_ops()
        for expected in (
            "add", "sub", "mul", "div", "matmul", "exp", "log", "sqrt",
            "relu", "sum", "max", "reshape", "transpose", "getitem",
            "concatenate", "stack",
        ):
            assert expected in names
        assert is_registered("mul")
        assert not is_registered("definitely-not-an-op")

    def test_unknown_op_raises_with_known_names(self):
        with pytest.raises(KeyError, match="known ops"):
            get_op("nonexistent")

    def test_op_testable_in_isolation_without_tensors(self):
        spec = get_op("mul")
        ctx = OpContext("mul")
        ctx.needs_input_grad = (True, True)
        a = np.array([2.0, 3.0])
        b = np.array([4.0, 5.0])
        out = spec.forward(ctx, a, b)
        assert np.allclose(out, [8.0, 15.0])
        grad_a, grad_b = spec.vjp(ctx, np.ones(2))
        assert np.allclose(grad_a, b)
        assert np.allclose(grad_b, a)

    def test_tape_records_carry_op_names(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        w = Tensor(np.ones((2, 4)), requires_grad=True)
        loss = ((x @ w).relu()).sum()
        assert loss.op == "sum"
        ops_in_tape = [name for name, _ in loss.trace()]
        assert "matmul" in ops_in_tape
        assert "relu" in ops_in_tape
        assert "leaf" in ops_in_tape

    def test_registry_dispatch_matches_closed_form_gradients(self):
        x = Tensor(np.array([[1.0, -2.0], [3.0, 0.5]]), requires_grad=True)
        loss = ((x * x) + x).sum()
        loss.backward()
        assert np.allclose(x.grad, 2.0 * x.data + 1.0)


class TestWorkspace:
    def test_same_key_reuses_buffer(self):
        workspace = Workspace()
        first = workspace.request((16, 8), "float64")
        second = workspace.request((16, 8), "float64")
        assert first is second
        assert workspace.stats()["hits"] == 1
        assert workspace.stats()["misses"] == 1

    def test_tags_separate_colliding_shapes(self):
        workspace = Workspace()
        a = workspace.request(32, "float64", tag="scores")
        b = workspace.request(32, "float64", tag="center")
        assert a is not b
        assert len(workspace) == 2

    def test_dtype_separates_buffers(self):
        workspace = Workspace()
        a = workspace.request(8, "float32")
        b = workspace.request(8, "float64")
        assert a.dtype == np.float32 and b.dtype == np.float64
        assert a is not b

    def test_clear_drops_everything(self):
        workspace = Workspace()
        workspace.request((4, 4))
        workspace.clear()
        assert len(workspace) == 0
        assert workspace.nbytes == 0


class TestBackendKernels:
    def test_pairwise_euclidean_matches_naive(self):
        rng = np.random.default_rng(0)
        queries = rng.normal(size=(13, 7))
        references = rng.normal(size=(5, 7))
        fast = get_backend().pairwise_distances(queries, references)
        naive = np.linalg.norm(queries[:, None, :] - references[None, :, :], axis=2)
        assert np.allclose(fast, naive, atol=1e-10)

    def test_pairwise_cosine_matches_naive(self):
        rng = np.random.default_rng(1)
        queries = rng.normal(size=(6, 4))
        references = rng.normal(size=(3, 4))
        fast = get_backend().pairwise_distances(queries, references, metric="cosine")
        qn = queries / np.linalg.norm(queries, axis=1, keepdims=True)
        rn = references / np.linalg.norm(references, axis=1, keepdims=True)
        assert np.allclose(fast, 1.0 - qn @ rn.T, atol=1e-10)

    def test_pairwise_shape_errors(self):
        backend = get_backend()
        with pytest.raises(ShapeError):
            backend.pairwise_distances(np.zeros((3, 2)), np.zeros((3, 5)))
        with pytest.raises(ShapeError):
            backend.pairwise_distances(np.zeros(3), np.zeros((3, 2)))

    def test_grouped_means_matches_per_class_loop(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(20, 3))
        groups = rng.integers(0, 4, size=20)
        unique, means = get_backend().grouped_means(values, groups)
        for class_id, mean in zip(unique, means):
            assert np.allclose(mean, values[groups == class_id].mean(axis=0))

    def test_backend_asarray_follows_policy(self):
        backend = get_backend()
        assert isinstance(backend, NumpyBackend)
        with precision("edge"):
            assert backend.asarray([1.0, 2.0]).dtype == np.float32
        assert backend.asarray([1.0, 2.0]).dtype == np.float64


class TestGradcheckDtypePolicy:
    def test_gradcheck_passes_in_float64(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True, dtype="float64")
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True, dtype="float64")

        def function(inputs):
            a, b = inputs
            return ((a @ b).tanh() * (a @ b)).sum()

        assert check_gradients(function, [x, w])

    def test_gradcheck_passes_even_under_edge_policy(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True, dtype="float64")
        with precision("edge"):
            assert check_gradients(lambda inputs: (inputs[0] * inputs[0]).sum(), [x])

    def test_gradcheck_rejects_float32_inputs(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True, dtype="float32")
        with pytest.raises(GradientError, match="float64"):
            check_gradients(lambda inputs: (inputs[0] * inputs[0]).sum(), [x])


def _train_learner(dtype_profile, scenario):
    config = PiloteConfig(
        hidden_dims=(32, 16),
        embedding_dim=8,
        batch_size=16,
        max_epochs_pretrain=4,
        max_epochs_increment=3,
        cache_size=60,
        max_pairs_per_batch=64,
        seed=0,
    )
    with precision(dtype_profile):
        learner = PILOTE(config, seed=0)
        learner.pretrain(scenario.old_train, scenario.old_validation, exemplars_per_class=10)
        learner.learn_new_classes(scenario.new_train, scenario.new_validation)
    return learner


class TestEndToEndDtypeParity:
    @pytest.fixture(scope="class")
    def scenario(self):
        dataset = make_feature_dataset(samples_per_class=40, seed=11)
        return build_incremental_scenario(dataset, [int(dataset.classes[-1])], rng=3)

    def test_training_is_finite_and_comparable_in_both_dtypes(self, scenario):
        """Full float32 training works and lands near the float64 accuracy.

        Bitwise dtype parity of *training* is impossible (rounding compounds
        over optimisation steps), so the contract is: both runs are finite
        and the edge precision costs essentially no accuracy.
        """
        learner32 = _train_learner("edge", scenario)
        learner64 = _train_learner("reference", scenario)
        with precision("edge"):
            scores32 = learner32.predict_scores(scenario.test.features)
            accuracy32 = learner32.evaluate(scenario.test)
        scores64 = learner64.predict_scores(scenario.test.features)
        accuracy64 = learner64.evaluate(scenario.test)
        assert np.all(np.isfinite(scores32))
        assert np.all(np.isfinite(scores64))
        assert accuracy32 > 0.5 and accuracy64 > 0.5
        assert abs(accuracy32 - accuracy64) <= 0.2

    def test_inference_of_one_model_agrees_across_dtypes(self, scenario):
        """The same trained model served in float32 predicts like float64.

        Inference is a single forward pass, so dtype rounding (~1e-7) moves
        distances far less than typical class margins; predictions must agree
        on (essentially) every window.
        """
        import copy

        learner64 = _train_learner("reference", scenario)
        predictions64 = learner64.predict(scenario.test.features)

        with precision("edge"):
            learner32 = copy.deepcopy(learner64)
            for parameter in learner32.model.parameters():
                parameter.data = parameter.data.astype(np.float32)
            learner32._refresh_prototypes()
            predictions32 = learner32.predict(scenario.test.features)
            embeddings32 = learner32.embed(scenario.test.features)

        assert embeddings32.dtype == np.float32
        agreement = float(np.mean(predictions32 == predictions64))
        assert agreement >= 0.95

    def test_float32_training_serves_float32_embeddings(self, scenario):
        with precision("edge"):
            learner = PILOTE(
                PiloteConfig(
                    hidden_dims=(16,), embedding_dim=4, batch_size=16,
                    max_epochs_pretrain=2, cache_size=40, max_pairs_per_batch=32, seed=1,
                ),
                seed=1,
            )
            learner.pretrain(scenario.old_train, exemplars_per_class=8)
            embeddings = learner.embed(scenario.test.features)
        assert embeddings.dtype == np.float32
