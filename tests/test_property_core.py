"""Property-based tests for core PILOTE data structures and metrics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.exemplars import herding_selection
from repro.core.ncm import NCMClassifier
from repro.core.pairs import PairSampler
from repro.core.prototypes import compute_class_prototypes
from repro.metrics.classification import accuracy, per_class_accuracy
from repro.metrics.confusion import confusion_matrix

SETTINGS = dict(max_examples=25, deadline=None)

labels_strategy = hnp.arrays(
    np.int64, st.integers(4, 30), elements=st.integers(min_value=0, max_value=3)
)


class TestPairSamplerProperties:
    @given(labels_strategy)
    @settings(**SETTINGS)
    def test_pair_labels_consistent_with_classes(self, labels):
        sampler = PairSampler(strategy="all", max_pairs=200, rng=0)
        pairs = sampler.sample(labels)
        expected = (labels[pairs.left] == labels[pairs.right]).astype(float)
        assert np.array_equal(pairs.same_class, expected)
        assert pairs.n_pairs == pairs.n_positive + pairs.n_negative

    @given(labels_strategy, st.integers(1, 50))
    @settings(**SETTINGS)
    def test_max_pairs_respected(self, labels, max_pairs):
        sampler = PairSampler(strategy="all", max_pairs=max_pairs, rng=0)
        pairs = sampler.sample(labels)
        assert pairs.n_pairs <= max_pairs

    @given(labels_strategy)
    @settings(**SETTINGS)
    def test_no_self_pairs(self, labels):
        pairs = PairSampler(strategy="all", max_pairs=500, rng=0).sample(labels)
        assert np.all(pairs.left != pairs.right)


class TestPrototypeProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(4, 20), st.integers(2, 6)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(**SETTINGS)
    def test_prototypes_lie_within_class_bounds(self, embeddings):
        labels = np.arange(embeddings.shape[0]) % 2
        prototypes = compute_class_prototypes(embeddings, labels)
        for class_id, prototype in prototypes.items():
            rows = embeddings[labels == class_id]
            assert np.all(prototype >= rows.min(axis=0) - 1e-9)
            assert np.all(prototype <= rows.max(axis=0) + 1e-9)

    @given(st.integers(2, 10), st.integers(1, 8))
    @settings(**SETTINGS)
    def test_herding_prefix_property(self, n_exemplars, seed):
        """The first k herded exemplars are the same regardless of the total budget."""
        rng = np.random.default_rng(seed)
        embeddings = rng.normal(size=(20, 4))
        small = herding_selection(embeddings, embeddings, n_exemplars)
        large = herding_selection(embeddings, embeddings, min(n_exemplars + 5, 20))
        assert np.array_equal(small, large[: len(small)])


class TestNCMProperties:
    @given(st.integers(2, 5), st.integers(2, 8), st.integers(0, 100))
    @settings(**SETTINGS)
    def test_prototype_points_classify_to_their_own_class(self, n_classes, dim, seed):
        rng = np.random.default_rng(seed)
        prototypes = {c: rng.normal(c * 10.0, 0.1, size=dim) for c in range(n_classes)}
        classifier = NCMClassifier().fit(prototypes)
        matrix = np.stack([prototypes[c] for c in range(n_classes)])
        predictions = classifier.predict(matrix)
        assert predictions.tolist() == list(range(n_classes))

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 15), st.integers(2, 5)),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(**SETTINGS)
    def test_scores_are_a_probability_distribution(self, embeddings):
        classifier = NCMClassifier().fit(
            {0: np.zeros(embeddings.shape[1]), 1: np.ones(embeddings.shape[1])}
        )
        scores = classifier.predict_scores(embeddings)
        assert np.allclose(scores.sum(axis=1), 1.0)
        assert np.all(scores >= 0)


class TestMetricProperties:
    @given(labels_strategy)
    @settings(**SETTINGS)
    def test_accuracy_of_identical_predictions_is_one(self, labels):
        assert accuracy(labels, labels) == 1.0
        assert all(v == 1.0 for v in per_class_accuracy(labels, labels).values())

    @given(labels_strategy, st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_confusion_matrix_totals(self, labels, seed):
        rng = np.random.default_rng(seed)
        predictions = rng.integers(0, 4, size=labels.shape[0])
        matrix = confusion_matrix(labels, predictions, classes=[0, 1, 2, 3])
        assert matrix.sum() == labels.shape[0]
        assert np.trace(matrix) == int(np.sum(labels == predictions))
        # Row sums equal per-class support.
        for class_id in range(4):
            assert matrix[class_id].sum() == int(np.sum(labels == class_id))

    @given(labels_strategy, st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_accuracy_matches_confusion_trace(self, labels, seed):
        rng = np.random.default_rng(seed)
        predictions = rng.integers(0, 4, size=labels.shape[0])
        matrix = confusion_matrix(labels, predictions, classes=[0, 1, 2, 3])
        assert accuracy(labels, predictions) == pytest.approx(
            np.trace(matrix) / labels.shape[0]
        )
