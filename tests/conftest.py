"""Shared fixtures for the test suite.

Training-heavy fixtures (a tiny synthetic dataset, a pre-trained PILOTE
learner) are session-scoped so the expensive work happens once; tests that
mutate a learner must deep-copy it first (helpers below do so).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.activities import Activity
from repro.data.dataset import HARDataset
from repro.data.streams import IncrementalScenario, build_incremental_scenario
from repro.data.synthetic import make_feature_dataset


TINY_CONFIG = PiloteConfig(
    hidden_dims=(32, 16),
    embedding_dim=8,
    batch_size=16,
    max_epochs_pretrain=6,
    max_epochs_increment=5,
    cache_size=80,
    max_pairs_per_batch=64,
    seed=0,
)


@pytest.fixture(scope="session")
def tiny_config() -> PiloteConfig:
    """A very small PILOTE configuration for fast training in tests."""
    return TINY_CONFIG


@pytest.fixture(scope="session")
def har_dataset() -> HARDataset:
    """A small five-activity synthetic feature dataset (shared, read-only)."""
    return make_feature_dataset(samples_per_class=80, seed=123)


@pytest.fixture(scope="session")
def run_scenario(har_dataset) -> IncrementalScenario:
    """Class-incremental scenario with 'Run' held out as the new class."""
    return build_incremental_scenario(har_dataset, [Activity.RUN], rng=5)


@pytest.fixture(scope="session")
def pretrained_pilote(run_scenario, tiny_config) -> PILOTE:
    """A PILOTE learner pre-trained on the scenario's old classes (read-only)."""
    learner = PILOTE(tiny_config, seed=0)
    learner.pretrain(
        run_scenario.old_train, run_scenario.old_validation, exemplars_per_class=15
    )
    return learner


@pytest.fixture()
def pilote_copy(pretrained_pilote) -> PILOTE:
    """A mutable deep copy of the pre-trained learner (per-test)."""
    return copy.deepcopy(pretrained_pilote)


@pytest.fixture(scope="session")
def incremented_pilote(pretrained_pilote, run_scenario) -> PILOTE:
    """A learner that has already integrated the 'Run' class (read-only)."""
    learner = copy.deepcopy(pretrained_pilote)
    learner.learn_new_classes(run_scenario.new_train, run_scenario.new_validation)
    return learner


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(42)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_repro_sanitize: opt this test out of the REPRO_SANITIZE=1 "
        "race-sanitizer fixture (used by tests that inject races on purpose)",
    )


@pytest.fixture(autouse=True)
def _repro_sanitize(request):
    """Run every test under the runtime race sanitizer when REPRO_SANITIZE=1.

    Every :class:`~repro.serving.ServingClient` built during the test is
    instrumented by a shared :class:`~repro.analysis.Sanitizer`; an
    unsynchronized cross-thread write to scheduler/stats/signal-bus state
    fails the test with a SanitizerViolationError at teardown.
    """
    from repro.analysis.sanitizer import auto_sanitize, sanitize_enabled

    if not sanitize_enabled() or request.node.get_closest_marker(
        "no_repro_sanitize"
    ):
        yield
        return
    with auto_sanitize() as sanitizer:
        yield
    sanitizer.assert_clean()
