"""Tests for the correctness tooling: static linter + runtime sanitizer.

Layer 1 (static): per-rule positive/negative fixtures under
``tests/fixtures/lint/``, suppression handling, reporter schemas, and the
meta-test that the real ``src/repro`` tree lints clean (and fast).

Layer 2 (runtime): the sanitizer records writes on live serving state,
catches a deliberately-injected unsynchronized cross-thread write, and stays
clean across a sanitized chaos scenario.
"""

from __future__ import annotations

import dataclasses
import json
import textwrap
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Finding,
    LintEngine,
    RULES,
    default_rules,
    list_rules,
    make_rule,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.sanitizer import (
    AccessRecord,
    RecordingProxy,
    Sanitizer,
    auto_sanitize,
    sanitize_enabled,
)
from repro.backend import BACKENDS, COLLECTIVES
from repro.control import CHAOS_SCENARIOS, CONTROLLERS
from repro.control.chaos import ChaosRunReport, run_chaos
from repro.exceptions import AnalysisError, SanitizerViolationError
from repro.serving import EXECUTORS, ROLLOUT_POLICIES, ROUTING_POLICIES
from repro.serving.protocol import PredictRequest

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
DIRTY = FIXTURES / "dirty"
CLEAN = FIXTURES / "clean"

ALL_RULE_IDS = (
    "repro-rng",
    "repro-clock",
    "repro-errors",
    "repro-registry",
    "repro-lock-callback",
    "repro-roundtrip",
)


def rule_ids(findings):
    return {finding.rule_id for finding in findings}


# --------------------------------------------------------------------- #
# Rule registry
# --------------------------------------------------------------------- #
class TestRuleRegistry:
    def test_all_six_rules_registered(self):
        assert set(ALL_RULE_IDS) <= set(RULES)

    def test_make_rule_unknown_id_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule id"):
            make_rule("no-such-rule")

    def test_list_rules_has_descriptions(self):
        listed = dict(list_rules())
        for rule_id in ALL_RULE_IDS:
            assert listed[rule_id]

    def test_engine_select_unknown_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule id"):
            LintEngine(select=["bogus"])


# --------------------------------------------------------------------- #
# Per-rule fixtures: positives (dirty) and negatives (clean)
# --------------------------------------------------------------------- #
class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_fires_on_dirty_tree(self, rule_id):
        findings = run_lint(DIRTY, select=[rule_id])
        assert findings, f"{rule_id} found nothing in the dirty fixture tree"
        assert rule_ids(findings) == {rule_id}

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_quiet_on_clean_tree(self, rule_id):
        assert run_lint(CLEAN, select=[rule_id]) == []

    def test_dirty_tree_exits_nonzero_via_cli(self, capsys):
        from repro.cli import main

        assert main(["lint", "--path", str(DIRTY)]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_clean_tree_exits_zero_via_cli(self, capsys):
        from repro.cli import main

        assert main(["lint", "--path", str(CLEAN)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_carry_path_line_col(self):
        findings = run_lint(DIRTY / "rng_bad.py")
        assert findings
        for finding in findings:
            assert finding.path == "rng_bad.py"
            assert finding.line > 0
            assert str(finding).startswith("rng_bad.py:")

    def test_indirect_subclass_caught_by_registry_rule(self):
        findings = run_lint(DIRTY / "registry_bad.py", select=["repro-registry"])
        names = {finding.message.split()[3] for finding in findings}
        assert "IndirectlyForgotten" in names
        assert "_PrivateExecutor" not in names

    def test_registry_rule_flags_missing_dunder_all(self):
        findings = run_lint(DIRTY, select=["repro-registry"])
        assert any(
            "__all__" in finding.message and "ShadowBackend" in finding.message
            for finding in findings
        )


# --------------------------------------------------------------------- #
# Suppression handling
# --------------------------------------------------------------------- #
class TestSuppression:
    def lint_source(self, tmp_path, source, select=None):
        target = tmp_path / "module.py"
        target.write_text(textwrap.dedent(source))
        return run_lint(target, select=select)

    def test_line_level_noqa_suppresses_only_that_line(self, tmp_path):
        findings = self.lint_source(
            tmp_path,
            """
            import numpy as np

            a = np.random.normal(size=2)  # repro: noqa[repro-rng] justified
            b = np.random.normal(size=2)
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_file_level_noqa_suppresses_whole_file(self, tmp_path):
        findings = self.lint_source(
            tmp_path,
            """
            # repro: noqa[repro-rng] fixture generates raw noise on purpose
            import numpy as np

            a = np.random.normal(size=2)
            b = np.random.normal(size=2)
            """,
        )
        assert findings == []

    def test_bracketless_noqa_suppresses_all_rules(self, tmp_path):
        findings = self.lint_source(
            tmp_path,
            """
            import numpy as np

            a = np.random.normal(size=2)  # repro: noqa
            """,
        )
        assert findings == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        findings = self.lint_source(
            tmp_path,
            """
            import numpy as np

            a = np.random.normal(size=2)  # repro: noqa[repro-clock]
            """,
        )
        assert rule_ids(findings) == {"repro-rng"}

    def test_syntax_error_reported_as_finding(self, tmp_path):
        findings = self.lint_source(tmp_path, "def broken(:\n    pass\n")
        assert rule_ids(findings) == {"repro-parse"}


# --------------------------------------------------------------------- #
# Reporters
# --------------------------------------------------------------------- #
class TestReporters:
    def test_json_reporter_schema(self):
        findings = run_lint(DIRTY)
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert payload["count"] == len(findings) > 0
        assert sum(payload["by_rule"].values()) == payload["count"]
        for entry in payload["findings"]:
            assert set(entry) == {"rule_id", "path", "line", "col", "message"}

    def test_finding_round_trips(self):
        finding = Finding("repro-rng", "a/b.py", 3, 7, "message")
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_text_reporter_clean_and_dirty(self):
        assert "clean" in render_text([])
        finding = Finding("repro-rng", "a.py", 1, 0, "m")
        assert "a.py:1:0" in render_text([finding])


# --------------------------------------------------------------------- #
# Meta: the real tree lints clean, within the CI time budget
# --------------------------------------------------------------------- #
class TestRealTree:
    def test_src_tree_lints_clean_and_fast(self):
        root = Path(repro.__file__).resolve().parent
        start = time.perf_counter()
        findings = run_lint(root)
        elapsed = time.perf_counter() - start
        assert findings == [], render_text(findings)
        assert elapsed < 10.0, f"lint took {elapsed:.1f}s (budget 10s)"

    def test_default_rules_fresh_instances(self):
        first, second = default_rules(), default_rules()
        assert {r.rule_id for r in first} == {r.rule_id for r in second}
        assert all(a is not b for a, b in zip(first, second))


# --------------------------------------------------------------------- #
# Registry regression (R4 drift, pinned at runtime too)
# --------------------------------------------------------------------- #
class TestRegistryCompleteness:
    @pytest.mark.parametrize(
        "registry",
        [EXECUTORS, ROUTING_POLICIES, ROLLOUT_POLICIES, CONTROLLERS, BACKENDS, COLLECTIVES],
        ids=["executors", "routing", "rollout", "controllers", "backends", "collectives"],
    )
    def test_registry_keys_match_class_names(self, registry):
        for key, cls in registry.items():
            assert cls.name == key

    def test_registered_classes_exported(self):
        import repro.backend
        import repro.control
        import repro.serving

        for registry, package in (
            (EXECUTORS, repro.serving),
            (ROUTING_POLICIES, repro.serving),
            (ROLLOUT_POLICIES, repro.serving),
            (CONTROLLERS, repro.control),
            (BACKENDS, repro.backend),
            (COLLECTIVES, repro.backend),
        ):
            for cls in registry.values():
                assert cls.__name__ in package.__all__, (
                    f"{cls.__name__} registered but not exported by "
                    f"{package.__name__}.__all__"
                )


# --------------------------------------------------------------------- #
# Runtime sanitizer
# --------------------------------------------------------------------- #
def _build_client(n_devices=2, seed=0):
    from repro.server.simulation import build_serving_fleet
    from repro.serving import serve

    fleet = build_serving_fleet(n_devices, seed=seed)
    return serve(fleet, routing="hash", seed=seed)


def _feature(seed=0):
    from repro.server.simulation import _feature_pool

    return _feature_pool(seed, n_rows=4)[0]


class TestSanitizer:
    def test_records_writes_on_live_traffic(self):
        with _build_client() as client:
            sanitizer = Sanitizer().attach(client)
            for user in range(4):
                client.submit(PredictRequest(user_id=user, features=_feature()))
            client.drain()
            report = sanitizer.report()
            assert report["writes"] > 0
            assert report["clean"] is True
            assert any(t.startswith("stats[") for t in report["targets"])
            sanitizer.assert_clean()

    # Opted out of the REPRO_SANITIZE=1 autouse fixture: the rogue write
    # below is deliberate and would (correctly) fail its teardown check.
    @pytest.mark.no_repro_sanitize
    def test_catches_injected_cross_thread_write(self):
        with _build_client() as client:
            sanitizer = Sanitizer().attach(client)
            client.submit(PredictRequest(user_id=0, features=_feature()))
            client.drain()
            # The row the drain thread already owns (it served the request).
            row = next(
                r for r in client.scheduler._stats.values() if r.requests > 0
            )

            def rogue():
                row.requests += 1

            thread = threading.Thread(target=rogue, name="rogue-writer")
            thread.start()
            thread.join()
            violations = sanitizer.violations
            assert len(violations) == 1
            assert violations[0]["target"].startswith("stats[")
            assert violations[0]["field"] == "requests"
            with pytest.raises(SanitizerViolationError, match="cross-thread"):
                sanitizer.assert_clean()

    def test_proxy_forwards_reads_and_methods(self):
        with _build_client() as client:
            Sanitizer().attach(client)
            client.submit(PredictRequest(user_id=0, features=_feature()))
            client.drain()
            row = next(
                r for r in client.scheduler._stats.values() if r.requests > 0
            )
            assert isinstance(row, RecordingProxy)
            assert row.requests >= 1
            assert isinstance(row.to_dict(), dict)
            # The scheduler's own report path still works over proxies.
            assert client.report().total_requests >= 1

    def test_access_record_round_trips(self):
        record = AccessRecord(1, "main", "stats[0]", "requests", "write")
        assert AccessRecord.from_dict(record.to_dict()) == record

    def test_auto_sanitize_instruments_new_clients(self):
        with auto_sanitize() as sanitizer:
            with _build_client() as client:
                client.submit(PredictRequest(user_id=0, features=_feature()))
                client.drain()
        assert sanitizer.report()["writes"] > 0
        sanitizer.assert_clean()

    def test_sanitize_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled() is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled() is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert sanitize_enabled() is False


class TestSanitizedChaos:
    def test_chaos_scenario_clean_under_sanitizer(self):
        spec = dataclasses.replace(
            CHAOS_SCENARIOS["worker-storm"], n_ticks=6, requests_per_tick=16,
            storm_ticks=(2, 3),
        )
        report = run_chaos(spec, adaptive=True, sanitize=True)
        assert isinstance(report, ChaosRunReport)
        assert report.sanitized is True
        assert report.sanitizer_violations == 0
        assert report.exactly_once

    def test_chaos_report_round_trips_sanitizer_fields(self):
        report = ChaosRunReport(
            name="n", scenario="worker-storm", adaptive=True, seed=1,
            sent=4, answered=4, sanitized=True,
        )
        restored = ChaosRunReport.from_dict(report.to_dict())
        assert restored == report
