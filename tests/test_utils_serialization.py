"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.utils.serialization import (
    float32_nbytes,
    load_npz_state,
    save_npz_state,
    state_dict_nbytes,
)


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_arrays(self, tmp_path):
        state = {"weight": np.arange(6, dtype=np.float64).reshape(2, 3), "bias": np.zeros(3)}
        path = save_npz_state(tmp_path / "model", state)
        loaded = load_npz_state(path)
        assert np.allclose(loaded["weight"], state["weight"])
        assert np.allclose(loaded["bias"], state["bias"])

    def test_suffix_is_added(self, tmp_path):
        path = save_npz_state(tmp_path / "model", {"a": np.ones(2)})
        assert path.suffix == ".npz"

    def test_metadata_round_trip(self, tmp_path):
        path = save_npz_state(tmp_path / "m", {"a": np.ones(1)}, metadata={"classes": [1, 2]})
        loaded = load_npz_state(path)
        assert loaded["__metadata__"] == {"classes": [1, 2]}

    def test_bad_metadata_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            save_npz_state(tmp_path / "m", {"a": np.ones(1)}, metadata={"bad": object()})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_npz_state(tmp_path / "does_not_exist.npz")

    def test_nested_directory_created(self, tmp_path):
        path = save_npz_state(tmp_path / "deep" / "dir" / "model", {"a": np.ones(1)})
        assert path.exists()


class TestSizeAccounting:
    def test_state_dict_nbytes(self):
        state = {"a": np.zeros((10, 10)), "b": np.zeros(5)}
        assert state_dict_nbytes(state) == 105 * 8

    def test_float32_nbytes(self):
        assert float32_nbytes(100) == 400

    def test_float32_nbytes_rejects_negative(self):
        with pytest.raises(ValueError):
            float32_nbytes(-1)
