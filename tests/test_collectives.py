"""Tests for the collective ops and the sharded backend.

The property sweep is the heart of this file: for a grid of seeds, shapes and
world sizes it asserts that every collective reduction is *bit-exact* with the
serial left fold in float64 and invariant to how units were distributed over
shards (delivery order included).  The rest pins the transports (serial and
process, including typed worker death), the op-registry twins' forward/VJP
pairs, the sharded backend's ``grouped_means`` twin, the trainer's
data-parallel gradient path, and PILOTE end to end.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.backend import NumpyBackend
from repro.backend.collectives import (
    ProcessCollectives,
    SerialCollectives,
    allgather,
    allreduce,
    argmin_reduce,
    fixed_order_sum,
    make_collectives,
    reduce_scatter,
    register_shard_kernel,
)
from repro.backend.policy import precision
from repro.backend.registry import apply as apply_op
from repro.backend.sharded import ShardedBackend, sharded_herding_selection
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.exemplars import herding_selection
from repro.core.pilote import PILOTE
from repro.exceptions import (
    ConfigurationError,
    ExecutorError,
    ShapeError,
    WorkerDiedError,
)


@register_shard_kernel("test_sleep_forever")
def _kernel_test_sleep_forever(state, payload):  # pragma: no cover - killed
    """Test-only kernel: an alive-but-stuck worker for the deadline tests.

    Registered at import time so fork-started pools inherit it; never part of
    the production kernel set.
    """
    time.sleep(3600)

SEEDS = (0, 1, 2)
SHAPES = ((7,), (5, 3), (2, 3, 4))
WORLDS = (1, 2, 4, 7)


def _unit_arrays(seed, shape, n_units, dtype=np.float64):
    rng = np.random.default_rng(seed)
    # Wide exponent range so reassociation would actually change the bits.
    mantissa = rng.normal(size=(n_units,) + shape)
    exponents = rng.integers(-12, 12, size=(n_units,) + shape).astype(dtype)
    return [np.asarray(m * 10.0 ** e, dtype=dtype) for m, e in zip(mantissa, exponents)]


def _shard_delivery_order(n_units, world, seed):
    """Unit indices in the interleaved order shards would answer in."""
    order = list(np.random.default_rng(seed).permutation(n_units))
    return order  # arbitrary delivery order: collectives must not care


class TestPureCollectives:
    """Bit-exactness + shard-count invariance of the combine functions."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("world", WORLDS)
    def test_allreduce_sum_bit_exact_and_invariant(self, seed, shape, world):
        n_units = 3 * world + 1
        arrays = _unit_arrays(seed, shape, n_units)
        serial = arrays[0].copy()
        for array in arrays[1:]:
            serial = serial + array  # the serial left fold, fresh temporaries
        order = _shard_delivery_order(n_units, world, seed + 99)
        result = allreduce([(i, arrays[i]) for i in order], op="sum")
        assert result.dtype == np.float64
        assert np.array_equal(result, serial)
        assert np.array_equal(result, fixed_order_sum(arrays))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("world", WORLDS)
    def test_allreduce_mean_bit_exact(self, seed, world):
        arrays = _unit_arrays(seed, (4, 2), 2 * world + 1)
        order = _shard_delivery_order(len(arrays), world, seed)
        result = allreduce([(i, arrays[i]) for i in order], op="mean")
        assert np.array_equal(result, fixed_order_sum(arrays) / float(len(arrays)))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("world", WORLDS)
    def test_allgather_orders_by_unit_not_delivery(self, seed, world):
        arrays = _unit_arrays(seed, (3, 2), world + 2)
        order = _shard_delivery_order(len(arrays), world, seed + 7)
        gathered = allgather([(i, arrays[i]) for i in order])
        assert np.array_equal(gathered, np.concatenate(arrays, axis=0))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("world", WORLDS)
    def test_reduce_scatter_per_slot_serial_folds(self, seed, world):
        n_units = 4 * world
        arrays = _unit_arrays(seed, (6,), n_units)
        slots = [i % 3 for i in range(n_units)]
        order = _shard_delivery_order(n_units, world, seed + 13)
        result = reduce_scatter([(slots[i], i, arrays[i]) for i in order], op="sum")
        for slot in set(slots):
            members = [arrays[i] for i in range(n_units) if slots[i] == slot]
            assert np.array_equal(result[slot], fixed_order_sum(members))

    def test_argmin_reduce_ties_break_to_lowest_unit(self):
        value, payload = argmin_reduce([(2, 1.0, "c"), (0, 1.0, "a"), (1, 1.0, "b")])
        assert (value, payload) == (1.0, "a")
        value, payload = argmin_reduce([(0, 3.0, "x"), (5, -1.0, "y"), (2, 0.0, "z")])
        assert (value, payload) == (-1.0, "y")

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            allreduce([(0, np.ones(2)), (0, np.ones(2))])
        with pytest.raises(ShapeError):
            allreduce([(0, np.ones(2)), (1, np.ones(3))])
        with pytest.raises(ShapeError):
            fixed_order_sum([])
        with pytest.raises(ShapeError):
            argmin_reduce([])
        with pytest.raises(ConfigurationError):
            allreduce([(0, np.ones(2))], op="median")


class TestOpRegistryTwins:
    """The tape-facing allreduce/allgather ops: forward values and VJPs."""

    def test_allreduce_sum_forward_and_grad(self):
        parts = [Tensor(np.array([1.0, 2.0]) * (i + 1), requires_grad=True)
                 for i in range(3)]
        out = apply_op("allreduce_sum", *parts)
        assert np.array_equal(out.data, np.array([6.0, 12.0]))
        out.sum().backward()
        for part in parts:
            assert np.array_equal(part.grad, np.ones(2))

    def test_allreduce_mean_grad_scales_by_world(self):
        parts = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        out = apply_op("allreduce_mean", *parts)
        assert np.array_equal(out.data, np.full(3, 1.5))
        out.sum().backward()
        for part in parts:
            assert np.array_equal(part.grad, np.full(3, 0.25))

    def test_allgather_grad_splits_back(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        out = apply_op("allgather", a, b)
        assert out.shape == (6, 3)
        upstream = np.arange(18.0).reshape(6, 3)
        (out * upstream).sum().backward()
        assert np.array_equal(a.grad, upstream[:2])
        assert np.array_equal(b.grad, upstream[2:])


def _grouped_payloads(transport, values, groups):
    unique, inverse = np.unique(groups, return_inverse=True)
    payloads = []
    for chunk_index, chunk in enumerate(transport.partition(unique.shape[0])):
        if len(chunk) == 0:
            continue
        selector = np.flatnonzero((inverse >= chunk.start) & (inverse < chunk.stop))
        payloads.append(
            (chunk_index, values[selector], inverse[selector] - chunk.start, len(chunk))
        )
    return unique, payloads


class TestTransports:
    def test_partition_is_contiguous_balanced_and_covering(self):
        for shards in (1, 2, 3, 5):
            transport = SerialCollectives(shards)
            for n_units in (0, 1, shards - 1, shards, 3 * shards + 2):
                ranges = transport.partition(n_units)
                assert len(ranges) == shards
                flat = [i for r in ranges for i in r]
                assert flat == list(range(max(n_units, 0)))
                sizes = [len(r) for r in ranges]
                assert max(sizes) - min(sizes) <= 1

    def test_serial_and_process_grouped_partial_agree(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(400, 5))
        groups = rng.integers(0, 8, size=400)
        serial = SerialCollectives(2)
        unique, payloads = _grouped_payloads(serial, values, groups)
        serial_results = serial.run("grouped_partial", payloads)
        process = ProcessCollectives(2)
        try:
            process_results = process.run("grouped_partial", payloads)
        finally:
            process.close()
        for (si, ss, sc), (pi, ps, pc) in zip(serial_results, process_results):
            assert si == pi
            assert np.array_equal(ss, ps)
            assert np.array_equal(sc, pc)

    def test_worker_death_mid_collective_is_typed_and_pool_recovers(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=(300, 4))
        groups = rng.integers(0, 6, size=300)
        process = ProcessCollectives(2)
        try:
            unique, payloads = _grouped_payloads(process, values, groups)
            baseline = process.run("grouped_partial", payloads)
            # wait=False: the crash message is queued ahead of the next
            # call's tasks, so the worker dies *holding* them — the
            # mid-collective death that must fail the whole reduction.
            process.kill_worker(0, wait=False)
            with pytest.raises(WorkerDiedError):
                process.run("grouped_partial", payloads)
            # The pool respawned the slot: the next collective succeeds and
            # reproduces the pre-crash answer bit for bit.
            recovered = process.run("grouped_partial", payloads)
        finally:
            process.close()
        for (bi, bs, bc), (ri, rs, rc) in zip(baseline, recovered, strict=True):
            assert bi == ri and np.array_equal(bs, rs) and np.array_equal(bc, rc)

    def test_worker_death_between_collectives_respawns_silently(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=(200, 3))
        groups = rng.integers(0, 4, size=200)
        process = ProcessCollectives(2)
        try:
            unique, payloads = _grouped_payloads(process, values, groups)
            baseline = process.run("grouped_partial", payloads)
            # wait=True: joined before the next call, which notices the dead
            # slot pre-queue and respawns it — the died-idle path is loud in
            # logs but invisible to the caller.
            process.kill_worker(0, wait=True)
            recovered = process.run("grouped_partial", payloads)
        finally:
            process.close()
        for (bi, bs, bc), (ri, rs, rc) in zip(baseline, recovered, strict=True):
            assert bi == ri and np.array_equal(bs, rs) and np.array_equal(bc, rc)

    def test_unknown_kernel_fails_fast(self):
        process = ProcessCollectives(2)
        try:
            with pytest.raises(ConfigurationError):
                process.run("not-a-kernel", [1])
        finally:
            process.close()

    def test_model_tokens_never_collide_across_learner_generations(self):
        # A shared pool keys re-broadcasts by (model identity, revision).
        # id() values are reused after garbage collection and revisions
        # follow identical sequences across learners running the same
        # workload, so identity must come from the process-unique monotonic
        # instance_id — tokens from successive short-lived learners at equal
        # revision must all differ.
        config = PiloteConfig(hidden_dims=(6, 4), embedding_dim=3, seed=0)
        tokens = set()
        for _ in range(4):
            learner = PILOTE(config, seed=0)
            learner.model = EmbeddingNetwork(5, config=config, rng=0)
            tokens.add(learner._model_token())
            del learner  # free the model so a naive id() key could be reused
        assert len(tokens) == 4
        model = EmbeddingNetwork(5, config=config, rng=0)
        teacher = model.clone_frozen()
        assert model.instance_id != teacher.instance_id

    def test_process_pool_resyncs_scoped_dtype(self):
        # The pool spawns under the ambient (float64 reference) dtype; a
        # collective issued inside precision("edge") must re-install the
        # call-time dtype on the workers and rebuild the resident model, so
        # the sharded embeddings stay bit-exact with the serial path in both
        # precision scopes — and again after leaving the scope.
        config = PiloteConfig(hidden_dims=(8, 6), embedding_dim=4, seed=0)
        model = EmbeddingNetwork(5, config=config, rng=0)
        rows = np.random.default_rng(7).normal(size=(12, 5))
        process = ProcessCollectives(2)
        try:
            process.broadcast_model(model, (model.instance_id, 0))
            reference64 = model.embed(rows)
            ((_, sharded64),) = process.run("class_embeddings", [(0, rows)])
            assert np.array_equal(sharded64, reference64)
            with precision("edge"):
                reference32 = model.embed(rows)
                ((_, sharded32),) = process.run("class_embeddings", [(0, rows)])
            assert np.array_equal(sharded32, reference32)
            # The scope genuinely changed the arithmetic (float32 input cast),
            # so the equality above proves the worker followed the coordinator.
            assert not np.array_equal(reference32, reference64)
            ((_, again64),) = process.run("class_embeddings", [(0, rows)])
            assert np.array_equal(again64, reference64)
        finally:
            process.close()

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="stuck-kernel registration needs fork inheritance",
    )
    def test_stuck_worker_trips_deadline_and_pool_recovers(self):
        process = ProcessCollectives(2, timeout=0.5)
        try:
            start = time.monotonic()
            with pytest.raises(ExecutorError, match="deadline"):
                process.run("test_sleep_forever", [None])
            assert time.monotonic() - start < 30.0  # bounded, not a spin
            # The stuck slot was killed and respawned: the pool still serves.
            rng = np.random.default_rng(6)
            values = rng.normal(size=(40, 3))
            groups = rng.integers(0, 4, size=40)
            unique, payloads = _grouped_payloads(process, values, groups)
            reference = SerialCollectives(2).run("grouped_partial", payloads)
            recovered = process.run("grouped_partial", payloads)
            for (ri, rs, rc), (pi, ps, pc) in zip(reference, recovered, strict=True):
                assert ri == pi and np.array_equal(rs, ps) and np.array_equal(rc, pc)
        finally:
            process.close()

    def test_timeout_validation_and_passthrough(self):
        with pytest.raises(ConfigurationError):
            ProcessCollectives(2, timeout=0.0)
        built = make_collectives("process", shards=2, timeout=1.5)
        try:
            assert built._timeout == pytest.approx(1.5)
        finally:
            built.close()
        backend = ShardedBackend(shards=2, timeout=2.0)
        try:
            assert backend.collectives._timeout == pytest.approx(2.0)
        finally:
            backend.close()

    def test_make_collectives_degrades_to_serial(self, monkeypatch):
        assert isinstance(make_collectives("process", shards=1), SerialCollectives)
        monkeypatch.setenv("REPRO_SHARD_WORKER", "1")
        assert isinstance(make_collectives(None, shards=4), SerialCollectives)
        assert isinstance(make_collectives("process", shards=4), SerialCollectives)
        monkeypatch.delenv("REPRO_SHARD_WORKER")
        prebuilt = SerialCollectives(3)
        assert make_collectives(prebuilt, shards=5) is prebuilt
        with pytest.raises(ConfigurationError):
            make_collectives("carrier-pigeon", shards=2)


class TestShardedBackend:
    @pytest.mark.parametrize("shards", (2, 3, 5))
    def test_grouped_means_bit_exact_with_numpy_backend(self, shards):
        rng = np.random.default_rng(11)
        values = rng.normal(size=(513, 6)) * 10.0 ** rng.integers(-9, 9, size=(513, 6))
        groups = rng.integers(0, 12, size=513)
        reference_groups, reference_means = NumpyBackend().grouped_means(values, groups)
        backend = ShardedBackend(shards=shards, collectives="serial", min_shard_rows=1)
        unique, means = backend.grouped_means(values, groups)
        assert np.array_equal(unique, reference_groups)
        assert np.array_equal(means, reference_means)

    def test_grouped_means_process_transport_bit_exact(self):
        rng = np.random.default_rng(12)
        values = rng.normal(size=(300, 4))
        groups = rng.integers(0, 7, size=300)
        reference = NumpyBackend().grouped_means(values, groups)
        with ShardedBackend(shards=2, min_shard_rows=1) as backend:
            unique, means = backend.grouped_means(values, groups)
        assert np.array_equal(unique, reference[0])
        assert np.array_equal(means, reference[1])

    def test_grouped_means_serial_tail_below_threshold(self):
        rng = np.random.default_rng(13)
        values = rng.normal(size=(50, 3))
        groups = rng.integers(0, 4, size=50)
        backend = ShardedBackend(shards=4, collectives="serial", min_shard_rows=10_000)
        unique, means = backend.grouped_means(values, groups)
        reference = NumpyBackend().grouped_means(values, groups)
        assert np.array_equal(unique, reference[0])
        assert np.array_equal(means, reference[1])

    def test_registered_and_closable(self):
        from repro.backend import BACKENDS, make_backend

        assert BACKENDS["sharded"] is ShardedBackend
        backend = make_backend("sharded")
        assert isinstance(backend, ShardedBackend)
        backend.close()  # idempotent before first use
        backend.close()

    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_sharded_herding_is_shard_count_invariant(self, shards):
        rng = np.random.default_rng(21)
        embeddings = rng.normal(size=(90, 8))
        reference = sharded_herding_selection(
            embeddings, 12, SerialCollectives(1), block_rows=16
        )
        picked = sharded_herding_selection(
            embeddings, 12, SerialCollectives(shards), block_rows=16
        )
        assert np.array_equal(picked, reference)
        assert len(set(picked.tolist())) == len(picked)

    def test_sharded_herding_single_block_matches_serial_kernel(self):
        # One block ⇒ the scoring GEMV has the serial kernel's exact shape,
        # so even the last-ulp caveat disappears and the selections coincide.
        rng = np.random.default_rng(22)
        embeddings = rng.normal(size=(40, 6))
        serial = herding_selection(embeddings, embeddings, 9)
        blocked = sharded_herding_selection(
            embeddings, 9, SerialCollectives(2), block_rows=64
        )
        assert np.array_equal(blocked, serial)


class TestPiloteSharded:
    """End-to-end: PILOTE on the sharded backend is bit-exact with serial."""

    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.data.activities import Activity
        from repro.data.streams import build_incremental_scenario
        from repro.data.synthetic import make_feature_dataset

        dataset = make_feature_dataset(samples_per_class=60, seed=31)
        return build_incremental_scenario(dataset, [Activity.RUN], rng=5)

    @pytest.fixture(scope="class")
    def config(self):
        return PiloteConfig(
            hidden_dims=(24, 12),
            embedding_dim=8,
            batch_size=16,
            max_epochs_pretrain=3,
            max_epochs_increment=3,
            cache_size=60,
            max_pairs_per_batch=48,
            seed=0,
        )

    def _run(self, config, scenario, **kwargs):
        learner = PILOTE(config, seed=0, **kwargs)
        learner.pretrain(scenario.old_train, scenario.old_validation,
                         exemplars_per_class=12)
        learner.learn_new_classes(scenario.new_train, scenario.new_validation)
        predictions = learner.predict(scenario.test.features)
        state = (
            {c: learner.prototypes.get(c).copy() for c in learner.prototypes.classes},
            {c: learner.exemplars.get(c).copy() for c in learner.exemplars.classes},
            predictions,
        )
        learner.close()
        return state, dict(learner.phase_seconds)

    def test_sharded_backend_bit_exact_and_phase_timed(self, config, scenario):
        (serial_protos, serial_exemplars, serial_predictions), _ = self._run(
            config, scenario
        )
        sharded = ShardedBackend(shards=2, collectives="serial")
        (protos, exemplars, predictions), phases = self._run(
            config, scenario, backend=sharded
        )
        for class_id, prototype in serial_protos.items():
            assert np.array_equal(protos[class_id], prototype)
        for class_id, rows in serial_exemplars.items():
            assert np.array_equal(exemplars[class_id], rows)
        assert np.array_equal(predictions, serial_predictions)
        assert set(phases) == {"training", "herding", "prototype_refresh"}
        assert all(value >= 0.0 for value in phases.values())

    def test_shards_require_sharded_backend(self, config):
        with pytest.raises(ConfigurationError):
            PILOTE(config, shards=2)
        with pytest.raises(ConfigurationError):
            PILOTE(config, backend="numpy", shards=2)
        learner = PILOTE(config, backend="sharded", shards=3)
        assert learner.backend.world_size == 3
        learner.close()


class TestTrainerGradShards:
    def _loss_recorder(self, sizes):
        def batch_loss(features, labels):
            sizes.append(features.shape[0])
            return Tensor(np.asarray(features.sum()))

        return batch_loss

    def test_combined_loss_is_weighted_mean_of_chunks(self):
        from repro.nn.trainer import Trainer

        trainer = Trainer.__new__(Trainer)
        trainer.grad_shards = 3
        features = np.arange(20.0).reshape(10, 2)
        labels = np.zeros(10, dtype=np.int64)
        sizes = []
        loss = trainer._combined_loss(self._loss_recorder(sizes), features, labels)
        assert sizes == [4, 3, 3]
        expected = (
            features[:4].sum() * 0.4
            + features[4:7].sum() * 0.3
            + features[7:].sum() * 0.3
        )
        assert loss.data == pytest.approx(float(expected))

    def test_small_batches_fall_back_to_single_chunk(self):
        from repro.nn.trainer import Trainer

        trainer = Trainer.__new__(Trainer)
        trainer.grad_shards = 4
        sizes = []
        features = np.ones((6, 2))
        trainer._combined_loss(self._loss_recorder(sizes), features, np.zeros(6))
        assert sizes == [6]  # 6 < 2*4 ⇒ one chunk, no collective record

    def test_gradients_flow_through_the_collective(self):
        from repro.nn.trainer import Trainer

        trainer = Trainer.__new__(Trainer)
        trainer.grad_shards = 2
        weight = Tensor(np.array([1.0, -2.0]), requires_grad=True)

        def batch_loss(features, labels):
            return ((Tensor(features) @ weight) ** 2).mean()

        features = np.random.default_rng(0).normal(size=(8, 2))
        labels = np.zeros(8)
        loss = trainer._combined_loss(batch_loss, features, labels)
        loss.backward()
        sharded_grad = weight.grad.copy()
        weight.zero_grad()
        batch_loss(features, labels).backward()
        assert np.allclose(sharded_grad, weight.grad)

    def test_invalid_grad_shards_rejected(self):
        from repro.nn.module import Module
        from repro.nn.optim import SGD
        from repro.nn.trainer import Trainer

        class _Null(Module):
            def forward(self, x):  # pragma: no cover - never called
                return x

        model = _Null()
        with pytest.raises(ValueError):
            Trainer(model, SGD([], lr=0.1), grad_shards=0)


class TestProfilerPhases:
    def test_latency_report_roundtrip_with_phases(self):
        from repro.edge.profiler import LatencyReport

        report = LatencyReport(
            epochs_run=2,
            total_seconds=1.5,
            epoch_seconds=[0.7, 0.8],
            phase_seconds={"training": 1.2, "herding": 0.2,
                           "prototype_refresh": 0.1},
        )
        clone = LatencyReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.summary()["herding_seconds"] == pytest.approx(0.2)

    def test_scaled_to_scales_phases(self):
        from repro.edge.device import DeviceProfile
        from repro.edge.profiler import LatencyReport

        report = LatencyReport(
            epochs_run=1, total_seconds=1.0, epoch_seconds=[1.0],
            phase_seconds={"training": 0.5},
        )
        slow = DeviceProfile("slow", storage_bytes=2**20, memory_bytes=2**20,
                             relative_compute=0.5)
        scaled = report.scaled_to(slow)
        assert scaled.phase_seconds["training"] == pytest.approx(1.0)

    def test_profile_increment_exports_phase_breakdown(self, pilote_copy,
                                                       run_scenario):
        from repro.edge.profiler import EdgeProfiler

        report = EdgeProfiler().profile_increment(
            pilote_copy, run_scenario.new_train, run_scenario.new_validation
        )
        assert set(report.phase_seconds) == {
            "training", "herding", "prototype_refresh"
        }
        assert report.to_dict()["phase_seconds"] == report.phase_seconds
