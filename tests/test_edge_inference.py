"""Tests for the batched serving engine and its wiring into the edge stack."""

import copy

import numpy as np
import pytest

from repro.edge.device import DEVICE_PROFILES, DeviceProfile, EdgeDevice
from repro.edge.inference import InferenceEngine
from repro.edge.magneto import MagnetoPlatform
from repro.exceptions import DataError, EdgeResourceError, NotFittedError


class TestInferenceEngineCorrectness:
    def test_batched_matches_one_at_a_time_predict(self, pretrained_pilote, run_scenario):
        engine = InferenceEngine(pretrained_pilote, batch_size=32)
        windows = run_scenario.test.features
        batched = engine.predict(windows)
        one_at_a_time = np.concatenate(
            [pretrained_pilote.predict(window[None, :]) for window in windows]
        )
        assert np.array_equal(batched, one_at_a_time)

    def test_batch_size_does_not_change_predictions(self, pretrained_pilote, run_scenario):
        windows = run_scenario.test.features
        small = InferenceEngine(pretrained_pilote, batch_size=7).predict(windows)
        large = InferenceEngine(pretrained_pilote, batch_size=512).predict(windows)
        assert np.array_equal(small, large)

    def test_matches_learner_predict_after_increment(self, incremented_pilote, run_scenario):
        engine = incremented_pilote.inference_engine()
        windows = run_scenario.test.features
        assert np.array_equal(engine.predict(windows), incremented_pilote.predict(windows))

    def test_predict_scores_are_distributions(self, pretrained_pilote, run_scenario):
        engine = InferenceEngine(pretrained_pilote, batch_size=16)
        scores = engine.predict_scores(run_scenario.test.features[:10])
        assert scores.shape == (10, len(pretrained_pilote.classes_))
        assert np.allclose(scores.sum(axis=1), 1.0)
        assert np.all(scores >= 0)

    def test_single_window_accepted(self, pretrained_pilote, run_scenario):
        engine = InferenceEngine(pretrained_pilote)
        prediction = engine.predict(run_scenario.test.features[0])
        assert prediction.shape == (1,)

    def test_invalid_batch_size_rejected(self, pretrained_pilote):
        with pytest.raises(DataError):
            InferenceEngine(pretrained_pilote, batch_size=0)

    def test_empty_batch_returns_empty_predictions(self, pretrained_pilote, run_scenario):
        """Regression: an empty request must not crash the serving loop."""
        engine = InferenceEngine(pretrained_pilote)
        empty = np.empty((0, run_scenario.test.features.shape[1]))
        assert engine.predict(empty).shape == (0,)
        scores = engine.predict_scores(empty)
        assert scores.shape == (0, len(pretrained_pilote.classes_))


class TestInferenceEngineCache:
    def test_cache_built_once_and_reused(self, pretrained_pilote, run_scenario):
        engine = InferenceEngine(pretrained_pilote, batch_size=64)
        windows = run_scenario.test.features[:20]
        engine.predict(windows)
        engine.predict(windows)
        info = engine.cache_info()
        assert info["cache_refreshes"] == 1
        assert info["windows_served"] == 40
        assert info["cached_classes"] == len(pretrained_pilote.classes_)

    def test_cache_invalidates_after_learn_new_classes(self, pilote_copy, run_scenario):
        engine = pilote_copy.inference_engine()
        old_predictions = engine.predict(run_scenario.test.features)
        assert engine.cache_info()["cache_refreshes"] == 1
        new_class = int(run_scenario.new_train.classes[0])
        assert new_class not in set(old_predictions.tolist())

        pilote_copy.learn_new_classes(run_scenario.new_train, run_scenario.new_validation)
        predictions = engine.predict(run_scenario.test.features)
        info = engine.cache_info()
        assert info["cache_refreshes"] == 2
        assert info["cached_classes"] == len(pilote_copy.classes_)
        # The engine now serves the freshly learned class without re-wiring.
        assert new_class in set(predictions.tolist())
        assert np.array_equal(predictions, pilote_copy.predict(run_scenario.test.features))

    def test_explicit_invalidate_forces_rebuild(self, pretrained_pilote, run_scenario):
        engine = InferenceEngine(pretrained_pilote)
        engine.predict(run_scenario.test.features[:5])
        engine.invalidate()
        engine.predict(run_scenario.test.features[:5])
        assert engine.cache_info()["cache_refreshes"] == 2

    def test_engine_accessor_is_cached_on_learner(self, pilote_copy):
        assert pilote_copy.inference_engine() is pilote_copy.inference_engine()

    def test_engine_follows_direct_prototype_mutation(self, pilote_copy, run_scenario):
        """Regression: a direct store mutation must reach the engine, so the
        engine and ``learner.predict`` can never disagree."""
        engine = pilote_copy.inference_engine()
        windows = run_scenario.test.features[:16]
        engine.predict(windows)
        victim = pilote_copy.prototypes.classes[0]
        pilote_copy.prototypes.set(
            victim, np.full(pilote_copy.config.embedding_dim, 1e6)
        )
        mutated = engine.predict(windows)
        assert victim not in set(mutated.tolist())
        assert np.array_equal(mutated, pilote_copy.predict(windows))


class TestEdgeWiring:
    def test_device_infer_requires_engine(self):
        device = EdgeDevice()
        with pytest.raises(NotFittedError):
            device.infer(np.zeros((1, 4)))

    def test_device_attach_and_infer(self, pretrained_pilote, run_scenario):
        device = EdgeDevice()
        device.attach_inference(pretrained_pilote.inference_engine())
        predictions = device.infer(run_scenario.test.features[:8])
        assert predictions.shape == (8,)
        assert device.inference_requests == 1

    def test_device_profiles_default_to_float32(self):
        for profile in DEVICE_PROFILES.values():
            assert profile.compute_dtype == "float32"
        with pytest.raises(EdgeResourceError):
            DeviceProfile("bad", storage_bytes=1, memory_bytes=1, compute_dtype="float16")

    def test_device_precision_scope(self):
        device = EdgeDevice()
        with device.precision():
            from repro.backend import default_dtype

            assert default_dtype() == np.dtype(np.float32)

    def test_magneto_serves_through_device_engine(self, pretrained_pilote, run_scenario, tiny_config):
        platform = MagnetoPlatform(config=tiny_config)
        platform.cloud.learner = copy.deepcopy(pretrained_pilote)
        platform.cloud.history = object()
        platform.deploy_to_edge()
        predictions = platform.edge_predict(run_scenario.test.features[:12])
        assert predictions.shape == (12,)
        assert platform.device.inference_requests == 1
        assert platform.device.engine is not None
        assert np.array_equal(
            predictions, platform.edge_learner.predict(run_scenario.test.features[:12])
        )
