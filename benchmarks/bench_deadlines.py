"""Benchmarks of deadline-aware (EDF) serving (`repro.serving`).

Two gates, both on a serving-only learner (no gradient training, so the
measurements isolate the serving layer itself):

1. **EDF beats FIFO on deadline misses** — on an overloaded Zipf workload
   (arrivals ~4x the fleet's service rate) mixing urgent and relaxed
   deadline classes, earliest-deadline-first queue order must answer
   *strictly more* requests within their deadlines than FIFO arrival order,
   and lose strictly fewer to expiry+miss.  FIFO head-of-line-blocks late
   urgent requests behind earlier relaxed ones until their deadlines pass;
   EDF reorders each lane's queue so the urgent sub-stream (sized well
   within capacity) is served in time.  Deadlines are calibrated from a
   measured per-batch service time, so the gate is stable across machine
   speeds.
2. **EDF overhead within the serving gate** — with EDF scheduling enabled
   (on deadline-less traffic, where it degenerates to arrival order), the
   scheduler's per-request bookkeeping must stay at or below the legacy
   router's — the same bound ``bench_serving.py`` gates for FIFO.

Run via pytest (``python -m pytest benchmarks/bench_deadlines.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_deadlines.py``).
"""

from __future__ import annotations

import time

import numpy as np

from bench_fleet import N_FEATURES, build_fleet, make_serving_learner, make_workload
from repro.backend import precision
from repro.edge.transfer import package_for_edge
from repro.fleet import Router, TrafficGenerator, WorkloadSpec
from repro.serving import serve

#: Overload factor of the deadline workload: per-tick arrivals carry ~4x the
#: service capacity of one tick interval, so queues grow without bound.
OVERLOAD = 4.0

#: Deadline classes: 1-in-8 requests are urgent (relative deadline 3x one
#: lane-batch service time), the rest relaxed (120x — never at risk inside
#: the stream).  The urgent sub-stream alone is ~overload/8 = 0.5x capacity,
#: so EDF can serve it in time while FIFO expires most of it.
URGENT_MULTIPLIER = 1.0
RELAXED_MULTIPLIER = 40.0
DEADLINE_MULTIPLIERS = (URGENT_MULTIPLIER,) + (RELAXED_MULTIPLIER,) * 7

N_DEVICES = 4
REQUESTS_PER_TICK = 1024
N_TICKS = 16


def _calibrate_batch_service_seconds(fleet, pool) -> float:
    """Measured wall seconds to serve one lane's per-tick batch (best of 3)."""
    windows = pool[: REQUESTS_PER_TICK // N_DEVICES]
    device = fleet.devices[0]
    best = None
    for _ in range(3):
        start = time.perf_counter()
        device.infer(windows)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_edf_reduces_deadline_misses_vs_fifo(report):
    """EDF answers strictly more requests in deadline than FIFO (overload)."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))
        fleet = build_fleet(package, N_DEVICES)
        for device in fleet.devices:
            device.infer(pool[:8])  # warm every engine cache
        batch_service = _calibrate_batch_service_seconds(fleet, pool)
        workload = WorkloadSpec(
            pattern="zipf",
            n_users=1000,
            requests_per_tick=REQUESTS_PER_TICK,
            n_ticks=N_TICKS,
            windows_per_request=1,
            tick_seconds=batch_service / OVERLOAD,
            deadline_seconds=3.0 * batch_service,
            deadline_multipliers=DEADLINE_MULTIPLIERS,
        )

        def run(scheduling):
            client = serve(fleet, routing="hash", scheduling=scheduling, seed=7)
            traffic = TrafficGenerator(pool, workload, seed=7)
            # Open loop: the whole overloaded stream is submitted before the
            # drain, so queues actually build up and the queue *order* is
            # what decides which deadlines survive.
            for requests in traffic.ticks():
                client.submit_many(requests)
            client.drain()
            rep = client.report()
            in_deadline = rep.total_deadline_requests - rep.total_deadline_misses
            return in_deadline, rep

        fifo_in, fifo_report = run("fifo")
        edf_in, edf_report = run("edf")

    n_requests = REQUESTS_PER_TICK * N_TICKS
    fifo_lost = fifo_report.total_expired + fifo_report.total_deadline_misses
    edf_lost = edf_report.total_expired + edf_report.total_deadline_misses
    report(
        "bench_deadlines_edf",
        f"deadline attainment under ~{OVERLOAD:.0f}x overload "
        f"({n_requests} Zipf requests, {N_DEVICES} devices, 1-in-8 urgent)\n"
        f"  fifo: {fifo_in:6d} in deadline   "
        f"{fifo_report.total_expired:6d} expired   "
        f"{fifo_report.total_deadline_misses:6d} missed   "
        f"attainment {fifo_report.deadline_attainment:.4f}\n"
        f"  edf:  {edf_in:6d} in deadline   "
        f"{edf_report.total_expired:6d} expired   "
        f"{edf_report.total_deadline_misses:6d} missed   "
        f"attainment {edf_report.deadline_attainment:.4f}\n"
        f"  saved by EDF: {edf_in - fifo_in} requests "
        f"({(edf_in - fifo_in) / n_requests:.1%} of the stream)",
    )
    assert edf_in > fifo_in, "EDF must answer strictly more requests in deadline"
    assert edf_lost < fifo_lost


def test_edf_overhead_within_serving_gate(report):
    """EDF bookkeeping per request ≤ the legacy router's (bench_serving gate)."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))
        fleet = build_fleet(package, 1)
        fleet.devices[0].infer(pool[:8])  # warm the prototype cache
        ticks = list(TrafficGenerator(pool, make_workload("uniform"), seed=7).ticks())
        n_requests = sum(len(t) for t in ticks)

        def measure(run):
            """Best-of-3 per-request bookkeeping (µs) outside engine compute."""
            best = None
            for _ in range(3):
                wall, engine_wall = run()
                bookkeeping = max(wall - engine_wall, 0.0) / n_requests * 1e6
                best = bookkeeping if best is None else min(best, bookkeeping)
            return best

        def run_router():
            router = Router(fleet.devices, seed=7)
            start = time.perf_counter()
            for requests in ticks:
                router.dispatch_tick(requests)
            wall = time.perf_counter() - start
            return wall, router.report().engine_wall_seconds

        def run_edf_scheduler():
            # Drain per tick so both sides execute the identical shape (one
            # engine call per tick), as in bench_serving.
            client = serve(fleet, routing="hash", scheduling="edf", seed=7)
            start = time.perf_counter()
            for requests in ticks:
                client.submit_many(requests)
                client.drain()
            wall = time.perf_counter() - start
            return wall, client.report().engine_wall_seconds

        router_us = measure(run_router)
        edf_us = measure(run_edf_scheduler)

    report(
        "bench_deadlines_overhead",
        f"EDF scheduler bookkeeping per request ({n_requests} requests, "
        "1 device, best of 3)\n"
        f"  legacy Router tick drain:      {router_us:8.2f} us/request\n"
        f"  event-loop scheduler (edf):    {edf_us:8.2f} us/request",
    )
    assert edf_us <= router_us


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_edf_reduces_deadline_misses_vs_fifo(_report)
    test_edf_overhead_within_serving_gate(_report)
    print("\nall deadline benchmarks passed")
