"""Benchmarks of the fleet serving subsystem.

Three gates, all on a serving-only learner (no gradient training, so the
benchmark isolates the fleet layer itself):

1. **Throughput scaling** — the same Zipf workload routed through an 8-device
   fleet and a 1-device fleet; aggregate simulated throughput (devices drain
   their queues in parallel) must be ≥ 4× the single device.
2. **Routing overhead** — everything the router adds on top of engine compute
   (sharding, grouping, stats) must stay bounded per request, measured
   against a bare :class:`~repro.edge.inference.InferenceEngine` loop over
   the same per-tick batches.
3. **Checkpoint round-trip** — a device checkpointed, evicted to disk and
   restored on fresh hardware must reproduce the original device's
   predictions *exactly*.

Run via pytest (``python -m pytest benchmarks/bench_fleet.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_fleet.py``).
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.backend import precision
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pilote import PILOTE
from repro.edge.device import DeviceProfile
from repro.edge.transfer import package_for_edge
from repro.fleet import (
    CheckpointStore,
    FleetCoordinator,
    Router,
    TrafficGenerator,
    WorkloadSpec,
)

#: Homogeneous simulation node: generous budgets, reference-speed compute.
SIM_NODE = DeviceProfile(
    "sim-node", storage_bytes=256 * 2**20, memory_bytes=2**30, relative_compute=1.0
)

CONFIG = PiloteConfig(hidden_dims=(128, 64), embedding_dim=32, cache_size=1200, seed=0)
N_FEATURES = 80


def make_serving_learner(n_classes: int = 5, per_class: int = 150) -> PILOTE:
    """A pre-trained-looking learner built without gradient training."""
    rng = np.random.default_rng(0)
    learner = PILOTE(CONFIG, seed=0)
    learner.model = EmbeddingNetwork(N_FEATURES, config=CONFIG, rng=0)
    learner._old_classes = list(range(n_classes))
    for class_id in range(n_classes):
        learner.exemplars.set_exemplars(
            class_id, rng.normal(size=(per_class, N_FEATURES))
        )
    learner._refresh_prototypes()
    return learner


def build_fleet(package, n_devices: int) -> FleetCoordinator:
    fleet = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=0)
    fleet.provision(n_devices)
    fleet.deploy(package)
    return fleet


def make_workload(pattern: str = "uniform") -> WorkloadSpec:
    return WorkloadSpec(
        pattern=pattern,
        n_users=1000,
        requests_per_tick=4096,
        n_ticks=8,
        windows_per_request=1,
    )


def test_fleet_throughput_scales(report):
    """Aggregate 8-device throughput ≥ 4× a single device on the same stream.

    The gate runs on the uniform workload (capacity scaling with balanced
    shards).  The Zipf workload is reported alongside: rank-1 users
    concentrate enough traffic on one device that its queue dominates the
    makespan — the measured gap is the motivation for the future
    weighted/overflow balancing noted in ROADMAP.md.
    """
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))

        def routed_throughput(n_devices: int, pattern: str) -> float:
            fleet = build_fleet(package, n_devices)
            traffic = TrafficGenerator(pool, make_workload(pattern), seed=7)
            router = Router(fleet.devices, seed=7)
            # Warm every engine cache so the measurement is steady-state.
            for device in fleet.devices:
                device.infer(pool[:8])
            return router.route(traffic.ticks()).aggregate_throughput

        single = routed_throughput(1, "uniform")
        fleet8 = routed_throughput(8, "uniform")
        single_zipf = routed_throughput(1, "zipf")
        fleet8_zipf = routed_throughput(8, "zipf")
    scaling = fleet8 / single
    zipf_scaling = fleet8_zipf / single_zipf
    report(
        "bench_fleet_throughput",
        "fleet aggregate throughput (4096 req/tick x 8 ticks, 1000 users)\n"
        f"  uniform, 1 device:             {single:12.0f} windows/s\n"
        f"  uniform, 8 devices (parallel): {fleet8:12.0f} windows/s\n"
        f"  uniform scaling:               {scaling:12.2f}x\n"
        f"  zipf scaling (skew-limited):   {zipf_scaling:12.2f}x",
    )
    assert scaling >= 4.0


def test_router_overhead_bounded(report):
    """Router bookkeeping per request stays small vs a bare engine loop."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))
        fleet = build_fleet(package, 1)
        device = fleet.devices[0]
        traffic = TrafficGenerator(pool, make_workload(), seed=7)
        ticks = list(traffic.ticks())
        device.infer(pool[:8])  # warm the prototype cache

        router = Router(fleet.devices, seed=7)
        start = time.perf_counter()
        for requests in ticks:
            router.dispatch_tick(requests)
        routed_wall = time.perf_counter() - start
        stats = router.report().per_device[device.device_id]

        # Bare engine loop over the identical per-tick batches.
        batches = [
            np.concatenate([r.features for r in requests], axis=0)
            for requests in ticks
        ]
        engine = device.edge.engine
        start = time.perf_counter()
        for batch in batches:
            engine.predict(batch)
        bare_wall = time.perf_counter() - start

    n_requests = stats.requests
    bookkeeping = max(routed_wall - stats.wall_seconds, 0.0)
    overhead_us = bookkeeping / n_requests * 1e6
    ratio = routed_wall / bare_wall
    report(
        "bench_fleet_router_overhead",
        f"router overhead over {n_requests} requests (single device)\n"
        f"  routed wall:                 {routed_wall * 1e3:10.2f} ms\n"
        f"  bare InferenceEngine loop:   {bare_wall * 1e3:10.2f} ms\n"
        f"  routed / bare ratio:         {ratio:10.2f}x\n"
        f"  bookkeeping per request:     {overhead_us:10.1f} us",
    )
    assert overhead_us < 1000.0  # < 1 ms of routing bookkeeping per request
    assert ratio < 3.0


def test_checkpoint_roundtrip_exact(report):
    """Checkpoint → restore on fresh hardware reproduces predictions exactly."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        fleet = build_fleet(package, 1)
        device = fleet.devices[0]
        probe = np.random.default_rng(4).normal(size=(2048, N_FEATURES))
        live = device.infer(probe)

        with tempfile.TemporaryDirectory() as scratch:
            store = CheckpointStore(scratch)
            start = time.perf_counter()
            checkpoint = store.save(device)
            save_seconds = time.perf_counter() - start
            start = time.perf_counter()
            restored = store.restore(checkpoint)
            restore_seconds = time.perf_counter() - start
            replayed = restored.infer(probe)

    identical = bool(np.array_equal(live, replayed))
    report(
        "bench_fleet_checkpoint",
        "device checkpoint round-trip (5 classes, 750 exemplars, d=80)\n"
        f"  checkpoint size:  {checkpoint.nbytes / 1024:10.1f} KB\n"
        f"  save:             {save_seconds * 1e3:10.2f} ms\n"
        f"  restore:          {restore_seconds * 1e3:10.2f} ms\n"
        f"  2048 predictions identical: {identical}",
    )
    assert identical


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_fleet_throughput_scales(_report)
    test_router_overhead_bounded(_report)
    test_checkpoint_roundtrip_exact(_report)
    print("\nall fleet benchmarks passed")
