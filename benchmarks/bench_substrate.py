"""Micro-benchmarks of the substrates PILOTE is built on.

These are not paper figures; they document the cost of the building blocks
(synthetic data generation, feature extraction, autodiff forward/backward,
herding selection, NCM prediction) so regressions in the substrate show up in
the benchmark history.  The allocation benchmarks at the bottom compare the
seed implementations against the backend-vectorized hot paths on both axes
the edge cares about: step time and peak allocations.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.backend import get_backend, precision
from repro.core.exemplars import herding_selection
from repro.core.ncm import NCMClassifier
from repro.data.activities import Activity
from repro.data.sensors import default_sensor_suite
from repro.data.synthetic import SyntheticSensorGenerator
from repro.features.extractor import StatisticalFeatureExtractor
from repro.nn.layers import build_mlp


@pytest.fixture(scope="module")
def raw_windows():
    generator = SyntheticSensorGenerator(seed=0)
    return generator.generate_windows(Activity.WALK, 256)


def test_synthetic_generation_throughput(benchmark):
    generator = SyntheticSensorGenerator(seed=0)
    windows = benchmark(lambda: generator.generate_windows(Activity.RUN, 128))
    assert windows.shape[0] == 128


def test_feature_extraction_throughput(benchmark, raw_windows):
    suite = default_sensor_suite()
    extractor = StatisticalFeatureExtractor(
        suite.triaxial_groups, sampling_rate_hz=suite.sampling_rate_hz
    )
    features = benchmark(lambda: extractor.transform(raw_windows))
    assert features.shape == (256, 80)


def test_backbone_forward_backward(benchmark):
    network = build_mlp([80, 128, 64, 32], rng=0)
    batch = np.random.default_rng(0).normal(size=(64, 80))

    def step():
        network.zero_grad()
        loss = (network(Tensor(batch)) ** 2).mean()
        loss.backward()
        return float(loss.data)

    value = benchmark(step)
    assert np.isfinite(value)


def test_paper_scale_backbone_forward(benchmark):
    network = build_mlp([80, 1024, 512, 128, 64, 128], rng=0)
    network.eval()
    batch = np.random.default_rng(0).normal(size=(64, 80))
    out = benchmark(lambda: network(Tensor(batch)).data)
    assert out.shape == (64, 128)


def test_herding_selection_cost(benchmark):
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(1000, 64))
    indices = benchmark(lambda: herding_selection(embeddings, embeddings, 200))
    assert indices.shape[0] == 200


def test_ncm_prediction_latency(benchmark):
    rng = np.random.default_rng(0)
    classifier = NCMClassifier().fit({c: rng.normal(size=64) for c in range(5)})
    queries = rng.normal(size=(512, 64))
    predictions = benchmark(lambda: classifier.predict(queries))
    assert predictions.shape == (512,)


# --------------------------------------------------------------------------- #
# step time + peak allocations: seed paths vs backend-vectorized paths
# --------------------------------------------------------------------------- #


def _peak_bytes_and_seconds(function):
    """Run ``function`` under tracemalloc; return (peak bytes, wall seconds)."""
    tracemalloc.start()
    start = time.perf_counter()
    function()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, seconds


def test_herding_step_time_and_peak_allocations(report):
    """Herding before/after: the vectorized path must win on time AND memory."""
    from bench_backend import legacy_herding_selection

    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(1500, 64))
    budget = 250

    legacy_peak, legacy_seconds = _peak_bytes_and_seconds(
        lambda: legacy_herding_selection(embeddings, budget)
    )
    # Warm the workspace once so the measured step is the steady state the
    # edge actually runs (buffers reused, no fresh allocations).
    herding_selection(embeddings, embeddings, budget)
    new_peak, new_seconds = _peak_bytes_and_seconds(
        lambda: herding_selection(embeddings, embeddings, budget)
    )
    report(
        "bench_substrate_herding_allocations",
        "herding step (n=1500, d=64, m=250): time and peak tracemalloc bytes\n"
        f"  legacy:     {legacy_seconds * 1e3:8.2f} ms   peak {legacy_peak / 1024:10.1f} KiB\n"
        f"  vectorized: {new_seconds * 1e3:8.2f} ms   peak {new_peak / 1024:10.1f} KiB\n"
        f"  time ratio: {legacy_seconds / max(new_seconds, 1e-9):8.2f}x   "
        f"peak ratio: {legacy_peak / max(new_peak, 1):8.2f}x",
    )
    assert new_seconds < legacy_seconds
    assert new_peak < legacy_peak


def test_workspace_reuse_in_steady_state(report):
    """Repeated herding steps hit the workspace pool instead of allocating."""
    rng = np.random.default_rng(1)
    embeddings = rng.normal(size=(800, 32))
    workspace = get_backend().workspace
    herding_selection(embeddings, embeddings, 100)  # warm up the pool
    before = dict(workspace.stats())
    for _ in range(5):
        herding_selection(embeddings, embeddings, 100)
    after = workspace.stats()
    report(
        "bench_substrate_workspace",
        "workspace reuse across 5 steady-state herding steps\n"
        f"  hits:   {before['hits']:6d} -> {after['hits']:6d}\n"
        f"  misses: {before['misses']:6d} -> {after['misses']:6d}\n"
        f"  pooled buffers: {after['buffers']}  ({after['nbytes'] / 1024:.1f} KiB)",
    )
    assert after["hits"] >= before["hits"] + 5
    assert after["misses"] == before["misses"]


def test_float32_profile_halves_serving_footprint(report):
    """Embedding + distance buffers under the edge profile take half the bytes."""
    rng = np.random.default_rng(2)
    windows = rng.normal(size=(1024, 80))
    references = rng.normal(size=(6, 32))
    networks = {}
    for profile, dtype in (("reference", np.float64), ("edge", np.float32)):
        network = build_mlp([80, 128, 64, 32], rng=0)
        network.eval()
        for parameter in network.parameters():
            parameter.data = parameter.data.astype(dtype)
        networks[profile] = network

    def serve(profile):
        with precision(profile):
            backend = get_backend()
            batch = backend.asarray(windows)
            embeddings = networks[profile](Tensor(batch)).data
            return backend.pairwise_distances(embeddings, backend.asarray(references))

    peak64, seconds64 = _peak_bytes_and_seconds(lambda: serve("reference"))
    peak32, seconds32 = _peak_bytes_and_seconds(lambda: serve("edge"))
    report(
        "bench_substrate_dtype_footprint",
        "serving 1024 windows: peak tracemalloc bytes by dtype profile\n"
        f"  reference (float64): {peak64 / 1024:10.1f} KiB  {seconds64 * 1e3:7.2f} ms\n"
        f"  edge      (float32): {peak32 / 1024:10.1f} KiB  {seconds32 * 1e3:7.2f} ms\n"
        f"  footprint ratio:     {peak64 / max(peak32, 1):10.2f}x",
    )
    assert peak32 < peak64
