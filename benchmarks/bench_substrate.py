"""Micro-benchmarks of the substrates PILOTE is built on.

These are not paper figures; they document the cost of the building blocks
(synthetic data generation, feature extraction, autodiff forward/backward,
herding selection, NCM prediction) so regressions in the substrate show up in
the benchmark history.
"""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.core.exemplars import herding_selection
from repro.core.ncm import NCMClassifier
from repro.data.activities import Activity
from repro.data.sensors import default_sensor_suite
from repro.data.synthetic import SyntheticSensorGenerator
from repro.features.extractor import StatisticalFeatureExtractor
from repro.nn.layers import build_mlp


@pytest.fixture(scope="module")
def raw_windows():
    generator = SyntheticSensorGenerator(seed=0)
    return generator.generate_windows(Activity.WALK, 256)


def test_synthetic_generation_throughput(benchmark):
    generator = SyntheticSensorGenerator(seed=0)
    windows = benchmark(lambda: generator.generate_windows(Activity.RUN, 128))
    assert windows.shape[0] == 128


def test_feature_extraction_throughput(benchmark, raw_windows):
    suite = default_sensor_suite()
    extractor = StatisticalFeatureExtractor(
        suite.triaxial_groups, sampling_rate_hz=suite.sampling_rate_hz
    )
    features = benchmark(lambda: extractor.transform(raw_windows))
    assert features.shape == (256, 80)


def test_backbone_forward_backward(benchmark):
    network = build_mlp([80, 128, 64, 32], rng=0)
    batch = np.random.default_rng(0).normal(size=(64, 80))

    def step():
        network.zero_grad()
        loss = (network(Tensor(batch)) ** 2).mean()
        loss.backward()
        return float(loss.data)

    value = benchmark(step)
    assert np.isfinite(value)


def test_paper_scale_backbone_forward(benchmark):
    network = build_mlp([80, 1024, 512, 128, 64, 128], rng=0)
    network.eval()
    batch = np.random.default_rng(0).normal(size=(64, 80))
    out = benchmark(lambda: network(Tensor(batch)).data)
    assert out.shape == (64, 128)


def test_herding_selection_cost(benchmark):
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(1000, 64))
    indices = benchmark(lambda: herding_selection(embeddings, embeddings, 200))
    assert indices.shape[0] == 200


def test_ncm_prediction_latency(benchmark):
    rng = np.random.default_rng(0)
    classifier = NCMClassifier().fit({c: rng.normal(size=64) for c in range(5)})
    queries = rng.normal(size=(512, 64))
    predictions = benchmark(lambda: classifier.predict(queries))
    assert predictions.shape == (512,)
