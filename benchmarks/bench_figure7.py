"""Benchmark: regenerate Figure 7 (accuracy vs. new-class exemplar count, extreme edge).

With 200 old-class exemplars fixed, the amount of available new-class ('Run')
data is swept down to a few dozen samples.  Expected shape: PILOTE reaches
high accuracy with very few new-class samples and dominates the re-trained
model in the low-data regime; the pre-trained model is the flat reference.
"""

import numpy as np

from repro.experiments import figure7

SWEEP = (10, 25, 50, 100, 150)


def test_figure7_reproduction(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure7.run(settings, sample_counts=SWEEP), rounds=1, iterations=1
    )
    report("figure7", result.to_text())
    pilote = [a.mean for a in result.series["pilote"]]
    retrained = [a.mean for a in result.series["re-trained"]]
    pretrained = [a.mean for a in result.series["pre-trained"]]

    # Shape checks.
    # 1. In the extreme low-data regime PILOTE does not lose to plain re-training.
    low = slice(0, 2)
    assert np.mean(pilote[low]) >= np.mean(retrained[low]) - 0.03
    # 2. PILOTE with few samples stays at or above the pre-trained reference.
    assert pilote[0] >= pretrained[0] - 0.05
    # 3. More new-class data helps (monotone-ish trend allowing noise).
    assert pilote[-1] >= pilote[0] - 0.03
