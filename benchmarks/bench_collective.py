"""Benchmarks of the sharded collective backend (`repro.backend.sharded`).

Two gates on the incremental-update workload the sharded backend exists for —
a large support-set build (per-class embedding + herding) plus the prototype
refresh, the phases `PILOTE.learn_new_classes` shards across the worker pool:

1. **Float64 bit-exactness** — under ``precision("reference")`` the sharded
   update (real process transport) must reproduce the serial backend's
   exemplar stores, prototypes and predictions *bit for bit*.  This is the
   design contract of the collectives layer: whole-unit sharding plus
   fixed-order folds, no "close enough" tolerance.
2. **Wall-clock scaling** — the sharded phases must beat the serial baseline
   on measured wall-clock, with the requirement scaled to the hardware
   actually present: ≥ 1.8× with 4+ usable cores (near-linear at the
   4-worker acceptance target), ≥ 1.2× with 2-3 cores, and on a single
   core — where parallel speedup is physically impossible — the gate
   degrades to an IPC-overhead bound: the sharded run may cost at most
   1.15× the serial one.

The serial baseline is BLAS-pinned to one thread (below, before numpy
initialises), so the comparison is executor parallelism, not BLAS thread-pool
contention.  Shard count comes from ``BENCH_SHARDS`` (default 4; CI pins 2).

Run via pytest (``python -m pytest benchmarks/bench_collective.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_collective.py``).
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* numpy initialises: otherwise the
# serial baseline silently parallelises its GEMMs across every core while the
# shard workers fight each other's BLAS pools, and the scaling gate measures
# thread-pool contention instead of the collective backend.  Effective for
# direct runs; the CI step exports the same variables for the pytest path.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np

from repro.backend import precision
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset

#: Shard-pool size under test (the acceptance target is 4; CI pins 2).
N_SHARDS = int(os.environ.get("BENCH_SHARDS", "4"))

#: Wide enough layers that per-class embedding compute (~2 Gflop per class)
#: dominates the cost of shipping that class's rows to a shard worker
#: (~0.5 MB), so the scaling gate measures parallelism, not pickling.
CONFIG = PiloteConfig(
    hidden_dims=(1024, 512), embedding_dim=32, cache_size=4000, seed=0
)
N_FEATURES = 80
N_CLASSES = 8
ROWS_PER_CLASS = 1500
BUDGET = 250


def usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def make_increment_dataset(seed: int = 1) -> HARDataset:
    """A large increment: N_CLASSES activities worth of feature windows."""
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for class_id in range(N_CLASSES):
        centre = rng.normal(scale=2.0, size=N_FEATURES)
        features.append(centre + rng.normal(size=(ROWS_PER_CLASS, N_FEATURES)))
        labels.append(np.full(ROWS_PER_CLASS, class_id, dtype=np.int64))
    return HARDataset(
        features=np.concatenate(features, axis=0),
        labels=np.concatenate(labels, axis=0),
    )


def make_learner(shards=None) -> PILOTE:
    """A pre-trained-looking learner built without gradient training.

    With ``shards`` the learner *owns* its sharded backend
    (``PILOTE(..., backend="sharded", shards=N)``), so ``learner.close()``
    reaps the worker pool — a leaked pool of idle workers measurably drags
    down the next pool's first collective on a busy box.
    """
    if shards is None:
        learner = PILOTE(CONFIG, seed=0)
    else:
        learner = PILOTE(CONFIG, seed=0, backend="sharded", shards=shards)
    learner.model = EmbeddingNetwork(N_FEATURES, config=CONFIG, rng=0)
    return learner


def run_update(learner: PILOTE, dataset: HARDataset, warmup: HARDataset):
    """The sharded phases of one incremental update, timed.

    The warmup pass spins up the worker pool and ships the model blob
    outside the timed window (matching ``bench_workers``'s untimed warm), so
    the measurement is the steady-state cost a long-lived learner pays.
    """
    learner.build_support_set(warmup, per_class=5)
    start = time.perf_counter()
    learner.build_support_set(dataset, per_class=BUDGET)
    wall = time.perf_counter() - start
    return wall, dict(learner.phase_seconds)


def test_sharded_update_bit_exact_float64(report):
    """Gate 1: process-transport sharded update ≡ serial update, bitwise."""
    with precision("reference"):
        dataset = make_increment_dataset()
        warmup = dataset.subsample(8, per_class=True, rng=0)
        probe = np.asarray(dataset.features[::37], dtype=np.float64)

        serial = make_learner()
        run_update(serial, dataset, warmup)
        serial_predictions = serial.predict(probe)

        sharded = make_learner(shards=N_SHARDS)
        try:
            run_update(sharded, dataset, warmup)
            sharded_predictions = sharded.predict(probe)
        finally:
            sharded.close()

    same_classes = serial.exemplars.classes == sharded.exemplars.classes
    exemplars_exact = same_classes and all(
        np.array_equal(serial.exemplars.get(c), sharded.exemplars.get(c))
        for c in serial.exemplars.classes
    )
    prototypes_exact = all(
        np.array_equal(serial.prototypes.get(c), sharded.prototypes.get(c))
        for c in serial.prototypes.classes
    )
    predictions_exact = bool(np.array_equal(serial_predictions, sharded_predictions))
    report(
        "bench_collective_exact",
        f"sharded vs serial incremental update, float64 reference precision\n"
        f"  increment:                {N_CLASSES} classes x {ROWS_PER_CLASS} rows, "
        f"budget {BUDGET}/class\n"
        f"  shards:                   {N_SHARDS} (process transport)\n"
        f"  exemplar stores bit-exact: {exemplars_exact}\n"
        f"  prototypes bit-exact:      {prototypes_exact}\n"
        f"  predictions bit-exact:     {predictions_exact}",
        data={
            "n_classes": N_CLASSES,
            "rows_per_class": ROWS_PER_CLASS,
            "budget": BUDGET,
            "shards": N_SHARDS,
            "exemplars_exact": exemplars_exact,
            "prototypes_exact": prototypes_exact,
            "predictions_exact": predictions_exact,
        },
    )
    assert exemplars_exact
    assert prototypes_exact
    assert predictions_exact


def test_sharded_update_wall_clock_scaling(report):
    """Gate 2: core-scaled speedup of the sharded phases over serial."""
    cores = usable_cores()
    effective = min(N_SHARDS, cores)
    dataset = make_increment_dataset()
    warmup = dataset.subsample(8, per_class=True, rng=0)

    serial = make_learner()
    serial_wall, serial_phases = run_update(serial, dataset, warmup)

    sharded = make_learner(shards=N_SHARDS)
    try:
        sharded_wall, sharded_phases = run_update(sharded, dataset, warmup)
    finally:
        sharded.close()

    speedup = serial_wall / sharded_wall
    if effective >= 4:
        required = 1.8
    elif effective >= 2:
        required = 1.2
    else:
        # One usable core: no parallel speedup is physically possible, so the
        # gate bounds the IPC overhead of going off-process instead.
        required = 1.0 / 1.15
    report(
        "bench_collective_scaling",
        f"sharded-phase wall-clock scaling ({N_SHARDS} shards, {cores} usable "
        f"cores, BLAS pinned to 1 thread)\n"
        f"  workload:                 {N_CLASSES} classes x {ROWS_PER_CLASS} rows, "
        f"budget {BUDGET}/class\n"
        f"  serial backend:           {serial_wall:8.3f} s "
        f"(herding {serial_phases.get('herding', 0.0):.3f} s, refresh "
        f"{serial_phases.get('prototype_refresh', 0.0):.3f} s)\n"
        f"  sharded backend:          {sharded_wall:8.3f} s "
        f"(herding {sharded_phases.get('herding', 0.0):.3f} s, refresh "
        f"{sharded_phases.get('prototype_refresh', 0.0):.3f} s)\n"
        f"  wall-clock speedup:       {speedup:8.2f}x  (gate: >= {required:.2f}x"
        f"{', acceptance target 1.8x needs >= 4 cores' if effective < 4 else ''})",
        data={
            "shards": N_SHARDS,
            "usable_cores": cores,
            "serial_seconds": serial_wall,
            "sharded_seconds": sharded_wall,
            "serial_phase_seconds": serial_phases,
            "sharded_phase_seconds": sharded_phases,
            "speedup": speedup,
            "required_speedup": required,
        },
    )
    assert speedup >= required


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_sharded_update_bit_exact_float64(_report)
    test_sharded_update_wall_clock_scaling(_report)
    print("\nall collective-backend benchmarks passed")
