"""Benchmark: regenerate Figure 5 (embedding-space visualisation).

Without matplotlib the figure's claim is made quantitative: class-separation
metrics (silhouette, intra/inter distance ratio) per method, plus an ASCII
scatter of the 2-D PCA projection.  Expected shape: PILOTE's embedding space
separates the five activities at least as well as the re-trained model's, and
both beat the pre-trained model (which has never seen 'Run').
"""

from repro.experiments import figure5


def test_figure5_reproduction(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure5.run(settings, max_points_per_class=120), rounds=1, iterations=1
    )
    report("figure5", result.to_text(include_scatter=True))
    pilote = result.separation["pilote"]["silhouette"]
    pretrained = result.separation["pre-trained"]["silhouette"]
    # Shape check: edge training on the new class must not degrade the
    # embedding space below the frozen pre-trained one.
    assert pilote >= pretrained - 0.10
