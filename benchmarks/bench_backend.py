"""Micro-benchmarks of the compute backend and the vectorized hot paths.

Three questions are answered, each against a faithful copy of the seed
implementation kept below as the *legacy* reference:

1. **Op dispatch** — what does routing every tensor op through the named
   registry cost per operation?
2. **Hot paths in isolation** — herding selection (incremental-mean GEMV
   formulation vs per-step candidate-mean materialisation) and batched NCM
   prediction (GEMM distances + ``take`` vs broadcast deltas + per-row list
   comprehension).
3. **The PILOTE incremental-update step** — embed the new-class windows,
   herding-select their exemplars, refresh every class prototype and serve a
   prediction batch; run once the seed way (float64 + legacy algorithms) and
   once the current way (float32 edge profile + vectorized paths + batched
   ``InferenceEngine``).  The acceptance bar for the backend refactor is a
   ≥ 2× end-to-end speedup on this step.

Run via pytest (``python -m pytest benchmarks/bench_backend.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_backend.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.backend import get_backend, precision
from repro.core.embedding import EmbeddingNetwork
from repro.core.config import PiloteConfig
from repro.core.exemplars import herding_selection
from repro.core.ncm import NCMClassifier
from repro.core.prototypes import PrototypeStore
from repro.edge.inference import InferenceEngine
from repro.core.pilote import PILOTE
from repro.data.synthetic import make_feature_dataset

# --------------------------------------------------------------------------- #
# legacy (seed) reference implementations
# --------------------------------------------------------------------------- #


def legacy_herding_selection(embeddings: np.ndarray, n_exemplars: int) -> np.ndarray:
    """The seed's herding loop: per-step candidate-mean matrix + row norms."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    count = embeddings.shape[0]
    n_exemplars = min(int(n_exemplars), count)
    prototype = embeddings.mean(axis=0)
    selected = []
    running_sum = np.zeros_like(prototype)
    available = np.ones(count, dtype=bool)
    for step in range(1, n_exemplars + 1):
        candidate_means = (running_sum[None, :] + embeddings) / step
        distances = np.linalg.norm(candidate_means - prototype[None, :], axis=1)
        distances[~available] = np.inf
        best = int(np.argmin(distances))
        selected.append(best)
        available[best] = False
        running_sum += embeddings[best]
    return np.asarray(selected, dtype=np.int64)


def legacy_ncm_predict(
    embeddings: np.ndarray, prototypes: np.ndarray, classes: list
) -> np.ndarray:
    """The seed's NCM path: broadcast delta tensor + per-row list comprehension."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    prototypes = np.asarray(prototypes, dtype=np.float64)
    deltas = embeddings[:, None, :] - prototypes[None, :, :]
    distances = np.linalg.norm(deltas, axis=2)
    nearest = np.argmin(distances, axis=1)
    return np.asarray([classes[index] for index in nearest], dtype=np.int64)


# --------------------------------------------------------------------------- #
# timing helper
# --------------------------------------------------------------------------- #


def best_of(function, repeats: int = 5) -> float:
    """Best wall-clock seconds over ``repeats`` runs (min is noise-robust)."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return min(timings)


# --------------------------------------------------------------------------- #
# benchmarks
# --------------------------------------------------------------------------- #


def test_op_dispatch_overhead(report):
    """Per-op cost of registry dispatch vs raw numpy (informational)."""
    x = Tensor(np.ones(32), requires_grad=True)
    y = Tensor(np.ones(32))
    raw_x, raw_y = x.data, y.data
    iterations = 2000

    def registry_ops():
        for _ in range(iterations):
            (x * y + y)

    def raw_ops():
        for _ in range(iterations):
            (raw_x * raw_y + raw_y)

    registry_ns = best_of(registry_ops) / (2 * iterations) * 1e9
    raw_ns = best_of(raw_ops) / (2 * iterations) * 1e9
    report(
        "bench_backend_dispatch",
        "op dispatch overhead\n"
        f"  registry-dispatched tensor op: {registry_ns:9.0f} ns/op\n"
        f"  raw numpy equivalent:          {raw_ns:9.0f} ns/op\n"
        f"  overhead factor:               {registry_ns / raw_ns:9.1f}x",
    )
    assert registry_ns < 1e6  # sanity: dispatch stays in the microsecond range


def test_herding_speedup(report):
    """Vectorized incremental-mean herding vs the seed loop (same selection)."""
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(2000, 64))
    budget = 300

    new_indices = herding_selection(embeddings, embeddings, budget)
    legacy_indices = legacy_herding_selection(embeddings, budget)
    # The two formulations are equal in exact arithmetic but round
    # differently, so a near-tie can legitimately flip an argmin on another
    # BLAS.  Compare the *objective* (distance of the running selected mean
    # to the prototype at every step) instead of exact index equality.
    prototype = embeddings.mean(axis=0)

    def objective(indices):
        running = np.cumsum(embeddings[indices], axis=0)
        means = running / np.arange(1, len(indices) + 1)[:, None]
        return np.linalg.norm(means - prototype, axis=1)

    assert np.allclose(objective(new_indices), objective(legacy_indices), atol=1e-8)

    legacy_seconds = best_of(lambda: legacy_herding_selection(embeddings, budget))
    new_seconds = best_of(lambda: herding_selection(embeddings, embeddings, budget))
    speedup = legacy_seconds / new_seconds
    report(
        "bench_backend_herding",
        "herding selection (n=2000, d=64, m=300)\n"
        f"  legacy (candidate-mean matrix): {legacy_seconds * 1e3:8.2f} ms\n"
        f"  vectorized (GEMV + workspace):  {new_seconds * 1e3:8.2f} ms\n"
        f"  speedup:                        {speedup:8.2f}x",
    )
    assert speedup >= 2.0


def test_batched_ncm_speedup(report):
    """GEMM distances + cached ``take`` vs broadcast deltas + list comprehension."""
    rng = np.random.default_rng(1)
    n_classes, dim = 6, 64
    prototype_vectors = {c * 7: rng.normal(size=dim) for c in range(n_classes)}
    classifier = NCMClassifier().fit(prototype_vectors)
    queries = rng.normal(size=(4096, dim))
    classes = classifier.classes_
    matrix = np.stack([prototype_vectors[c] for c in classes])

    new_predictions = classifier.predict(queries)
    legacy_predictions = legacy_ncm_predict(queries, matrix, classes)
    assert np.array_equal(new_predictions, legacy_predictions)

    legacy_seconds = best_of(lambda: legacy_ncm_predict(queries, matrix, classes))
    new_seconds = best_of(lambda: classifier.predict(queries))
    speedup = legacy_seconds / new_seconds
    report(
        "bench_backend_ncm",
        "batched NCM prediction (4096 queries, 6 classes, d=64)\n"
        f"  legacy (deltas + list comp): {legacy_seconds * 1e3:8.2f} ms\n"
        f"  vectorized (GEMM + take):    {new_seconds * 1e3:8.2f} ms\n"
        f"  speedup:                     {speedup:8.2f}x",
    )
    assert speedup >= 2.0


def _embed(network: EmbeddingNetwork, windows: np.ndarray) -> np.ndarray:
    with no_grad():
        return network.embed(windows)


def test_incremental_update_step_speedup(report):
    """The edge update cycle: embed → herd → refresh prototypes → serve.

    Legacy: float64 throughout, seed herding, per-class prototype loop, seed
    NCM serving.  Current: float32 edge profile, vectorized herding, grouped
    prototype refresh and the batched :class:`InferenceEngine`.
    """
    rng = np.random.default_rng(2)
    config = PiloteConfig(
        hidden_dims=(128, 64), embedding_dim=32, cache_size=1200, seed=0
    )
    n_old_classes, per_class = 5, 200
    new_windows = rng.normal(size=(1200, 80))
    serve_windows = rng.normal(size=(2048, 80))
    old_rows = {c: rng.normal(size=(per_class, 80)) for c in range(n_old_classes)}
    budget = 200

    # ---------------- legacy step (seed algorithms, float64) -------------- #
    def legacy_step():
        network = legacy_step.network
        new_embeddings = _embed(network, new_windows.astype(np.float64))
        chosen = legacy_herding_selection(new_embeddings, budget)
        exemplars = dict(old_rows)
        exemplars[n_old_classes] = new_windows[chosen]
        classes, matrix_rows = [], []
        for class_id in sorted(exemplars):
            embeddings = _embed(network, exemplars[class_id].astype(np.float64))
            classes.append(class_id)
            matrix_rows.append(embeddings.mean(axis=0))
        matrix = np.stack(matrix_rows)
        served = _embed(network, serve_windows.astype(np.float64))
        return legacy_ncm_predict(served, matrix, classes)

    # ---------------- current step (edge profile, vectorized) ------------- #
    def current_step():
        learner = current_step.learner
        with precision("edge"):
            new_embeddings = learner.model.embed(new_windows)
            learner.exemplars.select(
                n_old_classes, new_windows, new_embeddings, n_exemplars=budget
            )
            learner._refresh_prototypes()
            engine = current_step.engine
            engine.invalidate()
            return engine.predict(serve_windows)

    with precision("reference"):
        legacy_step.network = EmbeddingNetwork(80, config=config, rng=0)

    with precision("edge"):
        learner = PILOTE(config, seed=0)
        learner.model = EmbeddingNetwork(80, config=config, rng=0)
        learner._old_classes = list(range(n_old_classes))
        for class_id, rows in old_rows.items():
            learner.exemplars.set_exemplars(class_id, rows)
        learner._refresh_prototypes()
        current_step.learner = learner
        current_step.engine = learner.inference_engine(batch_size=1024)

    legacy_predictions = legacy_step()
    current_predictions = current_step()
    # Same model weights, same windows: the two paths must agree on (almost)
    # every served window despite the dtype difference.
    agreement = float(np.mean(legacy_predictions == current_predictions))
    assert agreement >= 0.9

    legacy_seconds = best_of(legacy_step, repeats=5)
    current_seconds = best_of(current_step, repeats=5)
    speedup = legacy_seconds / current_seconds
    report(
        "bench_backend_update_step",
        "PILOTE incremental-update step (1200 new windows, 6 classes, 2048 served)\n"
        f"  seed path   (float64 + legacy herding/NCM): {legacy_seconds * 1e3:8.2f} ms\n"
        f"  backend path (float32 + vectorized + engine): {current_seconds * 1e3:8.2f} ms\n"
        f"  speedup:                                     {speedup:8.2f}x\n"
        f"  prediction agreement across paths:           {agreement:8.3f}",
    )
    assert speedup >= 2.0


def test_end_to_end_learn_new_classes_dtype_speedup(report):
    """Full ``learn_new_classes`` under the edge profile vs reference profile.

    This includes gradient training, so the dtype policy is the only lever —
    reported for context, not gated (BLAS float32/float64 ratios vary by
    platform).
    """
    dataset = make_feature_dataset(samples_per_class=60, seed=5)
    from repro.data.streams import build_incremental_scenario

    scenario = build_incremental_scenario(dataset, [int(dataset.classes[-1])], rng=1)
    config = PiloteConfig(
        hidden_dims=(64, 32), embedding_dim=16, batch_size=32,
        max_epochs_pretrain=3, max_epochs_increment=3, cache_size=150,
        max_pairs_per_batch=128, seed=0,
    )

    def run(profile):
        with precision(profile):
            learner = PILOTE(config, seed=0)
            learner.pretrain(scenario.old_train, exemplars_per_class=30)
            start = time.perf_counter()
            learner.learn_new_classes(scenario.new_train)
            return time.perf_counter() - start

    reference_seconds = run("reference")
    edge_seconds = run("edge")
    report(
        "bench_backend_learn_dtype",
        "learn_new_classes wall clock by dtype profile\n"
        f"  reference (float64): {reference_seconds * 1e3:8.1f} ms\n"
        f"  edge      (float32): {edge_seconds * 1e3:8.1f} ms\n"
        f"  ratio:               {reference_seconds / max(edge_seconds, 1e-9):8.2f}x",
    )
    assert edge_seconds > 0


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_op_dispatch_overhead(_report)
    test_herding_speedup(_report)
    test_batched_ncm_speedup(_report)
    test_incremental_update_step_speedup(_report)
    test_end_to_end_learn_new_classes_dtype_speedup(_report)
    print("\nall backend benchmarks passed")
