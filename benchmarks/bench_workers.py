"""Benchmarks of the executor seam (`repro.serving.executor`).

Three gates, all on a serving-only learner (no gradient training, so the
measurements isolate batch execution itself):

1. **Serial bit-exactness** — the scheduler's default ``SerialExecutor``
   must reproduce the pre-refactor serving path exactly: identical class
   decisions and identical served counters as the legacy ``Router`` tick
   drain on the same stream.  The executor seam must be a pure mechanism
   change.
2. **Scheduler overhead** — the per-request bookkeeping of the serial
   executor path must stay at or below the legacy router's (the same gate
   ``benchmarks/bench_serving.py`` enforces, re-checked here so this
   benchmark is self-contained).
3. **Real wall-clock speedup** — a compute-bound fleet workload drained
   through the ``ProcessExecutor`` must beat the ``SerialExecutor`` on
   *measured* wall-clock throughput, with identical predictions.  The
   required speedup scales with the hardware actually available:
   ≥ 1.8× with 4+ usable cores (the acceptance target, 4 workers),
   ≥ 1.2× with 2-3 cores, and on a single core — where no parallel
   speedup is physically possible — the gate degrades to an IPC-overhead
   sanity bound and the report says so.  Worker count comes from the
   ``BENCH_WORKERS`` environment variable (default 4; CI pins 2 for the
   hosted runners).

Run via pytest (``python -m pytest benchmarks/bench_workers.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_workers.py``).
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* numpy initialises: otherwise
# the "serial" baseline silently parallelises its GEMMs across all cores
# while the worker processes fight each other's BLAS pools, and the speedup
# gate measures thread-pool contention instead of the executor.  Effective
# for direct runs (`python benchmarks/bench_workers.py`); pytest imports
# numpy before this file, so the CI step exports the same variables itself.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import time

import numpy as np

from repro.backend import precision
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pilote import PILOTE
from repro.edge.device import DeviceProfile
from repro.edge.transfer import package_for_edge
from repro.fleet import FleetCoordinator, Router, TrafficGenerator, WorkloadSpec

#: Worker-pool size under test (the acceptance target is 4; CI pins 2).
N_WORKERS = int(os.environ.get("BENCH_WORKERS", "4"))

#: Homogeneous simulation node: generous budgets, reference-speed compute.
SIM_NODE = DeviceProfile(
    "sim-node", storage_bytes=256 * 2**20, memory_bytes=2**30, relative_compute=1.0
)

#: Wide enough layers that the per-batch GEMMs dominate the IPC cost of
#: shipping the window payloads — the "compute-bound" in the gate (roughly
#: 100 ms of embedding compute per ~330 KB task payload).
HEAVY_CONFIG = PiloteConfig(
    hidden_dims=(512, 256), embedding_dim=32, cache_size=1200, seed=0
)
N_FEATURES = 80


def usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def make_serving_learner(config=HEAVY_CONFIG, n_classes: int = 5, per_class: int = 150) -> PILOTE:
    """A pre-trained-looking learner built without gradient training."""
    rng = np.random.default_rng(0)
    learner = PILOTE(config, seed=0)
    learner.model = EmbeddingNetwork(N_FEATURES, config=config, rng=0)
    learner._old_classes = list(range(n_classes))
    for class_id in range(n_classes):
        learner.exemplars.set_exemplars(
            class_id, rng.normal(size=(per_class, N_FEATURES))
        )
    learner._refresh_prototypes()
    return learner


def build_fleet(package, n_devices: int, config=HEAVY_CONFIG) -> FleetCoordinator:
    fleet = FleetCoordinator(config, profiles=(SIM_NODE,), seed=0)
    fleet.provision(n_devices)
    fleet.deploy(package)
    for device in fleet.devices:
        device.engine.warm()
    return fleet


def _compute_bound_ticks(pool, n_ticks: int = 6, per_tick: int = 256):
    spec = WorkloadSpec(
        pattern="zipf", n_users=500, requests_per_tick=per_tick,
        n_ticks=n_ticks, windows_per_request=16,
    )
    return list(TrafficGenerator(pool, spec, seed=7).ticks())


def _drain_stream(client, ticks):
    """Submit+drain a tick stream; returns (predictions, wall seconds)."""
    futures = []
    start = time.perf_counter()
    for requests in ticks:
        futures.extend(client.submit_many(requests))
        client.drain()
    wall = time.perf_counter() - start
    predictions = np.concatenate([f.result().class_ids for f in futures])
    return predictions, wall


def test_serial_executor_bit_exact_with_legacy_router(report):
    """The default executor reproduces the pre-refactor path exactly."""
    from repro.serving import serve

    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES)).astype(np.float32)
        ticks = _compute_bound_ticks(pool, n_ticks=3, per_tick=128)

        router_fleet = build_fleet(package, N_WORKERS)
        router = Router(router_fleet.devices, seed=7)
        router_predictions = []
        for requests in ticks:
            router_predictions.extend(router.dispatch_tick(requests))
        router_predictions = np.concatenate(router_predictions)
        router_report = router.report()

        scheduler_fleet = build_fleet(package, N_WORKERS)
        # The serving client reuses the router's sharding hash when seeded
        # alike, so the per-device placement is identical.
        with serve(scheduler_fleet, routing="hash", seed=7, executor="serial") as client:
            client_predictions, _ = _drain_stream(client, ticks)
            client_report = client.report()

    exact = bool(np.array_equal(router_predictions, client_predictions))
    same_counters = (
        client_report.total_requests == router_report.total_requests
        and client_report.total_windows == router_report.total_windows
        and all(
            client_report.per_device[i].requests == router_report.per_device[i].requests
            for i in router_report.per_device
        )
    )
    report(
        "bench_workers_serial_exact",
        "serial executor vs legacy Router tick drain (identical stream)\n"
        f"  requests:                 {router_report.total_requests}\n"
        f"  predictions bit-exact:    {exact}\n"
        f"  served counters identical: {same_counters}\n"
        f"  report clock:             {client_report.clock}",
    )
    assert exact and same_counters
    assert client_report.clock == "simulated"


def test_scheduler_overhead_at_most_router(report):
    """Per-request bookkeeping through the executor seam ≤ legacy router."""
    from repro.serving import serve

    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES)).astype(np.float32)
        fleet = build_fleet(package, 1)
        spec = WorkloadSpec(
            pattern="uniform", n_users=1000, requests_per_tick=4096, n_ticks=8
        )
        ticks = list(TrafficGenerator(pool, spec, seed=7).ticks())
        n_requests = sum(len(t) for t in ticks)

        def measure(run):
            """Best-of-3 per-request bookkeeping (µs) outside engine compute."""
            best = None
            for _ in range(3):
                wall, engine_wall = run()
                bookkeeping = max(wall - engine_wall, 0.0) / n_requests * 1e6
                best = bookkeeping if best is None else min(best, bookkeeping)
            return best

        def run_router():
            router = Router(fleet.devices, seed=7)
            start = time.perf_counter()
            for requests in ticks:
                router.dispatch_tick(requests)
            wall = time.perf_counter() - start
            return wall, router.report().engine_wall_seconds

        def run_scheduler():
            client = serve(fleet, routing="hash", seed=7, executor="serial")
            start = time.perf_counter()
            for requests in ticks:
                client.submit_many(requests)
                client.drain()
            wall = time.perf_counter() - start
            return wall, client.report().engine_wall_seconds

        router_us = measure(run_router)
        scheduler_us = measure(run_scheduler)

    report(
        "bench_workers_overhead",
        f"scheduler bookkeeping per request through the executor seam "
        f"({n_requests} requests, best of 3)\n"
        f"  legacy Router tick drain:        {router_us:8.2f} us/request\n"
        f"  scheduler w/ SerialExecutor:     {scheduler_us:8.2f} us/request",
    )
    assert scheduler_us <= router_us


def test_process_executor_wall_clock_speedup(report):
    """Real multi-core speedup of the process pool over inline execution."""
    from repro.serving import serve

    cores = usable_cores()
    effective = min(N_WORKERS, cores)
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES)).astype(np.float32)
        ticks = _compute_bound_ticks(pool)
        n_windows = sum(r.n_windows for t in ticks for r in t)
        probe = ticks[0][:4]

        serial_fleet = build_fleet(package, N_WORKERS)
        with serve(serial_fleet, routing="hash", seed=7, executor="serial") as client:
            client.submit_many(probe)
            client.drain()  # warm caches outside the timed window
            serial_predictions, serial_wall = _drain_stream(client, ticks)

        process_fleet = build_fleet(package, N_WORKERS)
        with serve(
            process_fleet, routing="hash", seed=7,
            executor="process", workers=N_WORKERS,
        ) as client:
            client.submit_many(probe)
            client.drain()  # spin up workers + ship snapshots, untimed
            process_predictions, process_wall = _drain_stream(client, ticks)
            process_report = client.report()

    speedup = serial_wall / process_wall
    exact = bool(np.array_equal(serial_predictions, process_predictions))
    if effective >= 4:
        required = 1.8
    elif effective >= 2:
        required = 1.2
    else:
        # One usable core: parallel speedup is physically impossible, so the
        # gate degrades to bounding the IPC overhead of going off-process.
        required = 0.25
    report(
        "bench_workers_speedup",
        f"process-executor wall-clock speedup ({N_WORKERS} workers, "
        f"{cores} usable cores, {N_WORKERS}-device fleet)\n"
        f"  windows served:           {n_windows}\n"
        f"  serial executor:          {serial_wall:8.3f} s "
        f"({n_windows / serial_wall:9.0f} windows/s)\n"
        f"  process executor:         {process_wall:8.3f} s "
        f"({n_windows / process_wall:9.0f} windows/s)\n"
        f"  wall-clock speedup:       {speedup:8.2f}x  (gate: >= {required}x"
        f"{', acceptance target 1.8x needs >= 4 cores' if effective < 4 else ''})\n"
        f"  predictions bit-exact:    {exact}\n"
        f"  report clock:             {process_report.clock}",
    )
    assert exact
    assert process_report.clock == "wall"
    assert speedup >= required


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_serial_executor_bit_exact_with_legacy_router(_report)
    test_scheduler_overhead_at_most_router(_report)
    test_process_executor_wall_clock_speedup(_report)
    print("\nall worker-executor benchmarks passed")
