"""Benchmark: regenerate Figure 6 (accuracy vs. support-set size).

Six series — {PILOTE, Re-trained, Pre-trained} × {representative, random
exemplars} — over the number of exemplars per class.  Expected shape:
accuracy grows and saturates with the exemplar budget, PILOTE dominates the
re-trained model with the largest gap at small budgets, and at the smallest
budgets the re-trained model drops towards (or below) the pre-trained one.
"""

import numpy as np

from repro.experiments import figure6

SWEEP = (10, 25, 50, 100, 200)


def test_figure6_reproduction(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure6.run(settings, exemplar_counts=SWEEP), rounds=1, iterations=1
    )
    report("figure6", result.to_text())
    herding = result.series["herding"]
    pilote = [a.mean for a in herding["pilote"]]
    retrained = [a.mean for a in herding["re-trained"]]
    pretrained = [a.mean for a in herding["pre-trained"]]

    # Shape checks.
    # 1. PILOTE is at least competitive with the re-trained model on average.
    assert np.mean(pilote) >= np.mean(retrained) - 0.02
    # 2. At small support sets (< 50 exemplars/class) the re-trained model drops
    #    to (or below) the pre-trained reference — the paper's crossover.
    assert retrained[0] <= pretrained[0] + 0.03
    # 3. From mid-size support sets on, PILOTE is the best of the three.
    assert pilote[-2] >= max(retrained[-2], pretrained[-2]) - 0.02
    # 4. Accuracy grows (saturates) with the exemplar budget for PILOTE.
    assert pilote[-1] >= pilote[0] - 0.02
