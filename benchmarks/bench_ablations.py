"""Benchmark: ablations of PILOTE's design choices (beyond the paper's figures).

Sweeps the balancing weight α (α = 0 degenerates to the Re-trained baseline),
the contrastive margin and the contrastive-loss variant, and prints one result
table per ablated hyper-parameter.
"""

from repro.experiments import ablations


def test_ablations(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: ablations.run(
            settings, alphas=(0.0, 0.25, 0.5, 0.75), margins=(0.5, 1.0, 2.0),
            variants=("squared", "hadsell"),
        ),
        rounds=1,
        iterations=1,
    )
    report("ablations", result.to_text())

    alpha_table = result.tables["alpha"]
    by_alpha = {row["alpha"]: row for row in alpha_table.rows}
    # Shape check: adding the distillation term (α > 0) preserves old-class
    # accuracy at least as well as α = 0 (the Re-trained baseline).
    assert by_alpha["0.5"]["old_accuracy"].mean >= by_alpha["0"]["old_accuracy"].mean - 0.03
