"""Benchmarks of the million-device fleet machinery.

Three gates, all on a serving-only learner (no gradient training, so the
benchmark isolates the coordination layer itself):

1. **Memory sub-linearity** — a hierarchical fleet holds one copy-on-write
   template per region instead of one learner per device, so growing the
   fleet 100× (10k → 1M devices) must grow peak allocation far less than
   100×; a flat fleet at small scale is measured alongside to show the
   per-device cost the pooling removes.
2. **Delta proportionality** — after refining K of C classes, the snapshot
   delta must carry exactly K prototype rows and a payload that is a small
   fraction of the full snapshot, and applying it must reproduce the target
   snapshot bit for bit.  This is what keeps broadcast re-syncs and worker
   re-shipping O(changed classes).
3. **Small-fleet bit-exactness** — the hierarchical coordinator with every
   device materialised must serve the exact predictions (and device
   assignments) of the flat coordinator under the same seeds, while shipping
   one package per region instead of one per device.

Each gate also emits ``results/<name>.json`` with the measured numbers so CI
artifacts are machine-readable.

Run via pytest (``python -m pytest benchmarks/bench_fleet_scale.py -q -s``)
or directly (``PYTHONPATH=src python benchmarks/bench_fleet_scale.py``).
"""

from __future__ import annotations

import tracemalloc

import numpy as np

from repro.backend import precision
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pilote import PILOTE
from repro.edge.device import DeviceProfile
from repro.edge.transfer import package_for_edge
from repro.fleet import FleetCoordinator, HierarchicalFleetCoordinator
from repro.serving import PredictRequest, serve

SIM_NODE = DeviceProfile(
    "sim-node", storage_bytes=256 * 2**20, memory_bytes=2**30, relative_compute=1.0
)

CONFIG = PiloteConfig(hidden_dims=(64, 32), embedding_dim=16, cache_size=600, seed=0)
N_FEATURES = 40


def make_serving_learner(n_classes: int = 5, per_class: int = 120) -> PILOTE:
    """A pre-trained-looking learner built without gradient training."""
    rng = np.random.default_rng(0)
    learner = PILOTE(CONFIG, seed=0)
    learner.model = EmbeddingNetwork(N_FEATURES, config=CONFIG, rng=0)
    learner._old_classes = list(range(n_classes))
    for class_id in range(n_classes):
        learner.exemplars.set_exemplars(
            class_id, rng.normal(size=(per_class, N_FEATURES))
        )
    learner._refresh_prototypes()
    return learner


def _peak_bytes(build) -> int:
    """Peak traced allocation while ``build()`` runs."""
    tracemalloc.start()
    try:
        build()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def test_memory_sublinear_in_devices(report):
    """100× more devices must cost far less than 100× the memory."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())

        def build_hier(n_devices: int) -> None:
            fleet = HierarchicalFleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=0)
            fleet.provision(n_devices)
            fleet.deploy(package)
            fleet.serving_lanes()
            fleet.lane_map()

        def build_flat(n_devices: int) -> None:
            fleet = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=0)
            fleet.provision(n_devices)
            fleet.deploy(package)

        flat_small = _peak_bytes(lambda: build_flat(200))
        hier_small = _peak_bytes(lambda: build_hier(200))
        hier_10k = _peak_bytes(lambda: build_hier(10_000))
        hier_1m = _peak_bytes(lambda: build_hier(1_000_000))

    ratio = hier_1m / max(hier_10k, 1)
    report(
        "bench_fleet_scale_memory",
        "hierarchical fleet peak allocation (provision + deploy + lanes)\n"
        f"  flat,         200 devices: {flat_small / 2**20:10.1f} MB\n"
        f"  hierarchical, 200 devices: {hier_small / 2**20:10.1f} MB\n"
        f"  hierarchical, 10k devices: {hier_10k / 2**20:10.1f} MB\n"
        f"  hierarchical,  1M devices: {hier_1m / 2**20:10.1f} MB\n"
        f"  10k -> 1M growth:          {ratio:10.1f}x (devices grew 100x)",
        data={
            "flat_200_bytes": flat_small,
            "hier_200_bytes": hier_small,
            "hier_10k_bytes": hier_10k,
            "hier_1m_bytes": hier_1m,
            "growth_10k_to_1m": ratio,
        },
    )
    assert ratio < 50.0  # sub-linear: 100x devices, < 50x memory
    assert hier_small < flat_small / 5  # pooling removes the per-device copies


def test_delta_bytes_proportional_to_changed_classes(report):
    """A K-class refinement re-syncs O(K) rows, not the full engine state."""
    n_classes = 8
    with precision("edge"):
        learner = make_serving_learner(n_classes=n_classes)
        rng = np.random.default_rng(1)
        probe = rng.normal(size=(256, N_FEATURES))
        rows = []
        for k in (1, 2, 4):
            base = learner.inference_engine().state_snapshot()
            for class_id in range(k):
                learner.refine_prototype(
                    class_id, rng.normal(size=(6, N_FEATURES)) + class_id
                )
            target = learner.inference_engine().state_snapshot()
            delta = target.diff(base)
            rebuilt = base.apply_delta(delta)
            exact = bool(
                np.array_equal(rebuilt.prototypes, target.prototypes)
                and np.array_equal(rebuilt.class_ids, target.class_ids)
            )
            rows.append((k, delta, target.nbytes, exact))

    lines = [f"snapshot delta payload vs full snapshot ({n_classes} classes)"]
    data = {"full_snapshot_bytes": rows[0][2], "n_classes": n_classes}
    for k, delta, full_nbytes, exact in rows:
        lines.append(
            f"  {k} class(es) refined: {delta.n_changed} rows, "
            f"{delta.nbytes:6d} B vs {full_nbytes} B full "
            f"({delta.nbytes / full_nbytes:7.2%}), apply exact: {exact}"
        )
        data[f"delta_bytes_k{k}"] = delta.nbytes
        data[f"delta_rows_k{k}"] = delta.n_changed
        assert delta.n_changed == k
        assert exact
        assert delta.nbytes < full_nbytes * 0.05
    report("bench_fleet_scale_delta", "\n".join(lines), data=data)


def test_small_fleet_bit_exact_with_flat(report):
    """Regional serving is a pure optimisation: flat predictions, fewer bytes."""
    n_devices, n_regions = 8, 4
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        flat = FleetCoordinator(CONFIG, profiles=(SIM_NODE,), seed=11)
        flat.provision(n_devices)
        flat.deploy(package)
        tree = HierarchicalFleetCoordinator(
            CONFIG, profiles=(SIM_NODE,), seed=11, n_regions=n_regions
        )
        tree.provision(n_devices)
        tree.deploy(package)
        for device_id in range(n_devices):
            tree.device(device_id)

        rng = np.random.default_rng(2)
        requests = [
            PredictRequest(user_id=user, features=rng.normal(size=(4, N_FEATURES)))
            for user in range(200)
        ]
        outputs = []
        for fleet in (flat, tree):
            client = serve(fleet, seed=5)
            try:
                pending = [client.submit(r) for r in requests]
                client.drain()
                outputs.append([p.result() for p in pending])
            finally:
                client.close()

    identical = all(
        a.device_id == b.device_id and np.array_equal(a.class_ids, b.class_ids)
        for a, b in zip(*outputs)
    )
    report(
        "bench_fleet_scale_exact",
        f"flat vs hierarchical fleet ({n_devices} devices, {n_regions} regions, "
        f"{len(requests)} requests)\n"
        f"  predictions + device assignment identical: {identical}\n"
        f"  deploy shipments, flat: {flat.transfers.deploy_shipments} "
        f"({flat.transfers.deploy_bytes / 2**20:.2f} MB)\n"
        f"  deploy shipments, tree: {tree.transfers.deploy_shipments} "
        f"({tree.transfers.deploy_bytes / 2**20:.2f} MB)",
        data={
            "identical": identical,
            "flat_deploy_bytes": flat.transfers.deploy_bytes,
            "tree_deploy_bytes": tree.transfers.deploy_bytes,
            "flat_deploy_shipments": flat.transfers.deploy_shipments,
            "tree_deploy_shipments": tree.transfers.deploy_shipments,
        },
    )
    assert identical
    assert tree.transfers.deploy_shipments == n_regions
    assert tree.transfers.deploy_bytes < flat.transfers.deploy_bytes


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_memory_sublinear_in_devices(_report)
    test_delta_bytes_proportional_to_changed_classes(_report)
    test_small_fleet_bit_exact_with_flat(_report)
    print("\nall fleet-scale benchmarks passed")
