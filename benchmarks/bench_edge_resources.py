"""Benchmark: the Q2 edge-applicability numbers.

The paper argues that < 200 exemplars per class fit in < 256 KB, that the
incremental update converges within ~20 epochs and that each epoch takes a
fraction of a second.  This benchmark measures the analogous quantities for
the reproduction (per-epoch latency of the incremental update, support-set
bytes, inference latency) and times a single full incremental update as the
pytest-benchmark payload.
"""

from repro.experiments import edge_resources


def test_edge_resources_q2(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: edge_resources.run(settings), rounds=1, iterations=1
    )
    report("edge_resources", result.to_text())

    # Storage shape: the byte count grows linearly with the exemplar budget and
    # the paper's reference point (200/class over the old classes) stays small.
    rows = {int(r["exemplars_per_class"]): r["bytes"] for r in result.storage_rows}
    assert rows[200] == 4 * rows[50]
    assert rows[200] <= 512 * 1024  # a few hundred KB at most

    # Latency shape: the update converges within the configured epoch budget
    # and each epoch is sub-second at benchmark scale on this machine.
    assert result.latency.epochs_run <= settings.config.max_epochs_increment
    assert result.latency.mean_epoch_seconds < 5.0
    assert result.accuracy_after_increment > 0.5
