"""Benchmarks of the self-tuning control plane (`repro.control`).

Three gates, all on a serving-only learner (no gradient training, so the
measurements isolate the serving and control layers):

1. **Adaptive beats every static config under chaos** — a Zipf stream at
   ~4x overload with a mid-run worker-death storm on half the fleet, run
   through every static ``{fifo,edf} x {hash,p2c}`` config and through the
   adaptive stack (edf + p2c + load-shedding + hedged requests).  The
   adaptive client must answer a strictly larger fraction of the stream
   within deadline than the *best* static config, by a CI-gated margin.
   The run uses the serial executor's simulated clock, so the gate is
   stable on single-core CI runners; deadlines are calibrated from a
   measured per-batch service time, so it is stable across machine speeds.
2. **Autoscaler elasticity without lost batches** — a bursty stream on the
   process executor: the autoscaler must grow the worker pool during the
   burst, shrink it back when traffic quiets (respecting cooldown), and
   every submitted request must still resolve successfully — resizes land
   between rounds (drain-then-retire), never dropping an in-flight batch.
3. **Chaos suite exactly-once** — every registered chaos scenario, run in
   both adaptive and static mode, must satisfy the exactly-once ledger:
   ``sent == answered + failed`` with zero unresolved futures, zero
   double-fired callbacks, and server-side conservation including hedges.

Run via pytest (``python -m pytest benchmarks/bench_control.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_control.py``).
"""

from __future__ import annotations

import time

import numpy as np

from bench_fleet import N_FEATURES, build_fleet, make_serving_learner
from repro.backend import precision
from repro.control import ControlPlane, FlakyDevice, PoolAutoscaler, run_suite
from repro.edge.transfer import package_for_edge
from repro.fleet import TrafficGenerator, WorkloadSpec
from repro.serving import serve

#: Overload factor of the chaos workload: per-tick arrivals carry ~4x the
#: service capacity of one tick interval.
OVERLOAD = 4.0

#: Deadline classes as in ``bench_deadlines``: 1-in-8 requests urgent
#: (relative deadline 3x one lane-batch service time), the rest relaxed.
#: The urgent sub-stream alone is ~overload/8 = 0.5x capacity.
DEADLINE_MULTIPLIERS = (1.0,) + (40.0,) * 7

N_DEVICES = 4
REQUESTS_PER_TICK = 512
N_TICKS = 12
#: Worker-death storm: half the fleet fails fast for the middle third of
#: the run.  A dead lane looks idle to load-based routing (it drains
#: instantly by failing), so static p2c keeps feeding it — the
#: failure-vortex the hedging controller's unhealthy-lane signal breaks.
STORM_TICKS = frozenset(range(4, 8))
STORM_DEVICES = (0, 1)

STATIC_CONFIGS = [
    ("fifo", "hash"),
    ("fifo", "p2c"),
    ("edf", "hash"),
    ("edf", "p2c"),
]


def _calibrate_batch_service_seconds(fleet, pool) -> float:
    """Measured wall seconds to serve one lane's per-tick batch (best of 3)."""
    windows = pool[: REQUESTS_PER_TICK // N_DEVICES]
    device = fleet.devices[0]
    best = None
    for _ in range(3):
        start = time.perf_counter()
        device.infer(windows)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _run_chaos_config(package, pool, batch_service, scheduling, routing, adaptive):
    """One closed-loop chaos run; returns the stream-level SLO summary."""
    fleet = build_fleet(package, N_DEVICES)
    storm = []
    for position in STORM_DEVICES:
        wrapper = FlakyDevice(fleet.devices[position])
        fleet.devices[position] = wrapper
        storm.append(wrapper)
    client = serve(
        fleet, routing=routing, scheduling=scheduling, seed=7, adaptive=adaptive
    )
    workload = WorkloadSpec(
        pattern="zipf",
        n_users=1000,
        requests_per_tick=REQUESTS_PER_TICK,
        n_ticks=N_TICKS,
        windows_per_request=1,
        tick_seconds=batch_service / OVERLOAD,
        deadline_seconds=3.0 * batch_service,
        deadline_multipliers=DEADLINE_MULTIPLIERS,
    )
    traffic = TrafficGenerator(pool, workload, seed=7)
    sent = 0
    # Closed loop (submit a tick, drain, repeat): the signal window sees
    # each round's failures, which is what lets the adaptive stack react
    # mid-storm; static configs run the identical loop.
    for tick, requests in enumerate(traffic.ticks()):
        for wrapper in storm:
            wrapper.failing = tick in STORM_TICKS
        sent += len(requests)
        client.submit_many(requests)
        client.drain()
    rep = client.report()
    in_deadline = rep.total_deadline_requests - rep.total_deadline_misses
    hedges = 0
    if adaptive:
        stats = client.control_stats()["hedging"]
        hedges = stats["fired"]
        # Duplicated answers would inflate attainment: a served loser may
        # re-count its deadline facts, so cap the claimed wins accordingly.
        in_deadline -= stats["losers_served"]
    return {
        "scheduling": scheduling,
        "routing": routing,
        "adaptive": adaptive,
        "sent": sent,
        "in_deadline": int(in_deadline),
        "attainment": in_deadline / sent,
        "failed": int(rep.total_failed),
        "expired": int(rep.total_expired),
        "shed": int(rep.total_shed),
        "cancelled": int(rep.total_cancelled),
        "hedges_fired": int(hedges),
    }


def test_adaptive_beats_static_under_chaos(report):
    """Adaptive control answers more of the stream in deadline than any
    static config, under overload with a worker-death storm."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))
        fleet = build_fleet(package, N_DEVICES)
        for device in fleet.devices:
            device.infer(pool[:8])  # warm every engine cache
        batch_service = _calibrate_batch_service_seconds(fleet, pool)

        rows = [
            _run_chaos_config(package, pool, batch_service, scheduling, routing, False)
            for scheduling, routing in STATIC_CONFIGS
        ]
        adaptive = _run_chaos_config(
            package, pool, batch_service, "edf", "p2c", True
        )

    best_static = max(rows, key=lambda row: row["attainment"])
    margin = adaptive["attainment"] - best_static["attainment"]
    n_requests = REQUESTS_PER_TICK * N_TICKS
    lines = [
        f"SLO attainment under ~{OVERLOAD:.0f}x Zipf overload with a "
        f"worker-death storm ({n_requests} requests, {N_DEVICES} devices, "
        f"{len(STORM_DEVICES)} dying for ticks {min(STORM_TICKS)}-"
        f"{max(STORM_TICKS)}, 1-in-8 urgent)",
    ]
    for row in rows + [adaptive]:
        label = (
            f"adaptive {row['scheduling']}+{row['routing']}"
            if row["adaptive"]
            else f"static   {row['scheduling']}+{row['routing']}"
        )
        lines.append(
            f"  {label:22s} {row['in_deadline']:5d} in deadline "
            f"({row['attainment']:7.2%})   failed {row['failed']:4d}   "
            f"expired {row['expired']:4d}   shed {row['shed']:4d}   "
            f"hedges {row['hedges_fired']:4d}"
        )
    lines.append(
        f"  margin over best static ({best_static['scheduling']}+"
        f"{best_static['routing']}): {margin:+.2%} of the stream"
    )
    report(
        "bench_control_slo",
        "\n".join(lines),
        data={
            "configs": rows + [adaptive],
            "best_static_attainment": best_static["attainment"],
            "adaptive_attainment": adaptive["attainment"],
            "margin": margin,
        },
    )
    assert adaptive["in_deadline"] > best_static["in_deadline"]
    # CI gate: the measured margin on this workload is ~5-6% of the
    # stream; gate at roughly half so scheduler noise can't flake it.
    assert margin >= 0.03, (
        f"adaptive margin {margin:.2%} below the 3% gate "
        f"(adaptive {adaptive['attainment']:.2%} vs best static "
        f"{best_static['attainment']:.2%})"
    )
    # The storm actually bit: static configs lost requests to dying lanes.
    assert best_static["failed"] > 0 or min(r["failed"] for r in rows) > 0


def test_autoscaler_elastic_without_lost_batches(report):
    """The autoscaler grows the process pool under burst, shrinks it when
    quiet, and never loses an in-flight batch across resizes."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(5).normal(size=(2048, N_FEATURES))
        fleet = build_fleet(package, N_DEVICES)
        reference = fleet.devices[0].infer(pool[:256])  # serial ground truth
        client = serve(fleet, routing="hash", seed=7, executor="process", workers=1)
        scaler = PoolAutoscaler(
            high_queue_per_worker=32.0, low_queue_per_worker=4.0, cooldown_ticks=1
        )
        ControlPlane(client, [scaler])
        executor = client.scheduler.executor
        futures = []
        sizes = []
        try:
            assert executor.n_workers == 1
            for _ in range(3):  # burst: 256 requests per wave
                futures.extend(
                    client.submit_many(
                        [
                            _predict_request(u, pool[u % 256])
                            for u in range(256)
                        ]
                    )
                )
                sizes.append(executor.n_workers)
                client.drain()
            grown = max(sizes)
            for _ in range(8):  # quiet: trickle waves
                futures.extend(
                    client.submit_many([_predict_request(0, pool[0])])
                )
                client.drain()
                sizes.append(executor.n_workers)
            shrunken = sizes[-1]
            results = [future.result() for future in futures]  # raises if lost
        finally:
            client.close()

    stats = scaler.stats()
    report(
        "bench_control_autoscaler",
        f"process-pool autoscaling over a burst-then-quiet stream "
        f"({len(futures)} requests, {N_DEVICES} lanes)\n"
        f"  pool size trace:     {sizes}\n"
        f"  grew to:             {grown} workers during the burst\n"
        f"  shrank to:           {shrunken} workers when quiet\n"
        f"  resize actions:      {stats['actions']} "
        f"({stats['scale_ups']} up, {stats['scale_downs']} down)\n"
        f"  lost batches:        0 (all {len(futures)} futures answered)",
        data={
            "sizes": sizes,
            "grown": grown,
            "shrunken": shrunken,
            **{k: v for k, v in stats.items() if k != "last"},
        },
    )
    assert grown > 1, "the burst must grow the pool"
    assert shrunken < grown, "quiet traffic must shrink the pool back"
    assert stats["scale_ups"] >= 1 and stats["scale_downs"] >= 1
    # Cooldown + hysteresis bound the churn well below one resize per wave.
    assert stats["actions"] <= 6
    assert len(results) == len(futures)
    # Answers across every pool size match the serial ground truth.
    for index in range(256):
        assert results[index].class_ids[0] == reference[index]


def _predict_request(user_id, features):
    from repro.serving import PredictRequest

    return PredictRequest(user_id=user_id, features=features)


def test_chaos_suite_exactly_once(report):
    """Every chaos scenario, adaptive and static, keeps the ledger exact."""
    with precision("edge"):
        adaptive_runs = run_suite(adaptive=True, seed=11)
        static_runs = run_suite(adaptive=False, seed=11)

    lines = ["chaos suite exactly-once ledgers (seed 11)"]
    data = {"adaptive": [], "static": []}
    for mode, runs in (("adaptive", adaptive_runs), ("static", static_runs)):
        for run in runs:
            lines.append(
                f"  {mode:8s} {run.name:22s} sent {run.sent:4d}  "
                f"answered {run.answered:4d}  failed {run.failed:4d}  "
                f"hedges {run.hedges_fired:4d}  exactly_once={run.exactly_once}"
            )
            data[mode].append(run.to_dict())
    report("bench_control_chaos", "\n".join(lines), data=data)
    for run in adaptive_runs + static_runs:
        assert run.exactly_once, f"{run.name}: {run.to_dict()}"
        assert run.sent == run.answered + run.failed
        assert run.unresolved == 0 and run.double_fired == 0


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_adaptive_beats_static_under_chaos(_report)
    test_autoscaler_elastic_without_lost_batches(_report)
    test_chaos_suite_exactly_once(_report)
    print("\nall control benchmarks passed")
