"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and prints the
rows/series it reports.  The default scale is chosen so the whole suite runs
in a few minutes on a laptop CPU; set ``REPRO_BENCH_SCALE=default`` or
``REPRO_BENCH_SCALE=paper`` to run larger reproductions (the printed shape is
the same, the absolute numbers get closer to convergence).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import PiloteConfig
from repro.experiments.common import ExperimentSettings

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")


def _bench_settings(seed: int = 7) -> ExperimentSettings:
    """The benchmark scale: small backbone, two rounds, ~200 windows per class."""
    return ExperimentSettings(
        samples_per_class=250,
        n_rounds=3,
        config=PiloteConfig(
            hidden_dims=(128, 64),
            embedding_dim=32,
            batch_size=48,
            max_epochs_pretrain=15,
            max_epochs_increment=12,
            cache_size=800,
            seed=seed,
        ),
        exemplars_per_class=100,
        seed=seed,
    )


def resolve_settings(seed: int = 7) -> ExperimentSettings:
    """Settings for the requested REPRO_BENCH_SCALE."""
    if _SCALE == "paper":
        return ExperimentSettings.paper_scale(seed=seed)
    if _SCALE == "default":
        return ExperimentSettings.default(seed=seed)
    return _bench_settings(seed=seed)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment settings shared by all benchmarks."""
    return resolve_settings()


@pytest.fixture(scope="session")
def report():
    """Print a reproduction report and persist it under ``benchmarks/results/``.

    pytest captures stdout by default, so each benchmark also writes its
    printed table/series to a text file next to the benchmark code; the files
    are what EXPERIMENTS.md references.  Passing ``data`` additionally writes
    ``results/<name>.json`` with the same measurements as machine-readable
    key/value pairs — CI uploads the whole ``results/`` directory as an
    artifact, so the JSON files give trend tooling something to parse.
    """
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)

    def _report(name: str, text: str, data: dict | None = None) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        if data is not None:
            with open(os.path.join(results_dir, f"{name}.json"), "w") as handle:
                json.dump({"benchmark": name, **data}, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print()
        print(text)
        return path

    return _report
