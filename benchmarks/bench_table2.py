"""Benchmark: regenerate Table 2.

Accuracy of the Pre-trained / Re-trained / PILOTE strategies on all five
"new class" scenarios (mean ± std over rounds).  The printed table mirrors the
paper's Table 2; the expected shape is PILOTE ≥ Re-trained on most scenarios,
with both above the Pre-trained baseline.
"""

from repro.experiments import table2


def test_table2_reproduction(benchmark, settings, report):
    result = benchmark.pedantic(lambda: table2.run(settings), rounds=1, iterations=1)
    wins = result.method_wins("pilote", "re-trained")
    text = result.to_text() + (
        f"\n\nPILOTE >= Re-trained on {wins} of {len(result.per_scenario)} scenarios"
    )
    report("table2", text)
    # Shape check: handling forgetting should not lose to plain re-training overall.
    assert wins >= len(result.per_scenario) // 2
    # Every method stays above chance level (0.2 for five classes).
    for aggregates in result.per_scenario.values():
        for aggregate in aggregates.values():
            assert aggregate.mean > 0.2
