"""Benchmarks of the unified serving API (`repro.serving`).

Three gates, all on a serving-only learner (no gradient training, so the
measurements isolate the serving layer itself):

1. **Scheduler overhead** — everything the event-loop scheduler adds on top
   of engine compute (routing, queueing, futures, stats) must stay at or
   below the legacy router's per-request bookkeeping on the identical
   workload.  The new API must not tax the hot path for its futures.
2. **Routing-policy p99** — under the Zipf-skewed workload on an 8-device
   fleet, ``least-loaded`` routing must beat ``hash`` routing on simulated
   p99 latency (the skewed head users overload one hash shard).
3. **Layer equivalence** — the same request stream served through a bare
   learner, a MAGNETO platform and a 1-device fleet must produce identical
   class decisions through the one client API.

Run via pytest (``python -m pytest benchmarks/bench_serving.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import time

import numpy as np

from bench_fleet import N_FEATURES, build_fleet, make_serving_learner, make_workload
from repro.backend import precision
from repro.edge.magneto import MagnetoPlatform
from repro.edge.transfer import package_for_edge
from repro.fleet import Router, TrafficGenerator
from repro.serving import serve


def _ticks(pool, pattern="uniform", seed=7):
    return list(TrafficGenerator(pool, make_workload(pattern), seed=seed).ticks())


def test_scheduler_overhead_at_most_router(report):
    """Event-loop bookkeeping per request ≤ the legacy router's."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))
        fleet = build_fleet(package, 1)
        device = fleet.devices[0]
        device.infer(pool[:8])  # warm the prototype cache
        ticks = _ticks(pool)
        n_requests = sum(len(t) for t in ticks)

        def measure(run):
            """Best-of-3 per-request bookkeeping (µs) outside engine compute."""
            best = None
            for _ in range(3):
                wall, engine_wall = run()
                bookkeeping = max(wall - engine_wall, 0.0) / n_requests * 1e6
                best = bookkeeping if best is None else min(best, bookkeeping)
            return best

        def run_router():
            router = Router(fleet.devices, seed=7)
            start = time.perf_counter()
            for requests in ticks:
                router.dispatch_tick(requests)
            wall = time.perf_counter() - start
            return wall, router.report().engine_wall_seconds

        def run_scheduler():
            # Drain per tick so both sides execute the identical shape:
            # one engine call per tick (the workload's arrivals are all 0.0,
            # so a single final drain would coalesce everything into one
            # batch and flatter the scheduler).
            client = serve(fleet, routing="hash", seed=7)
            start = time.perf_counter()
            for requests in ticks:
                client.submit_many(requests)
                client.drain()
            wall = time.perf_counter() - start
            return wall, client.report().engine_wall_seconds

        router_us = measure(run_router)
        scheduler_us = measure(run_scheduler)

        # Materialising every PredictResponse is deliberately lazy; measure
        # what it would add so the report shows the full-futures cost too.
        client = serve(fleet, routing="hash", seed=7)
        futures = []
        for requests in ticks:
            futures.extend(client.submit_many(requests))
            client.drain()
        start = time.perf_counter()
        responses = [future.result() for future in futures]
        result_us = (time.perf_counter() - start) / n_requests * 1e6
        assert len(responses) == n_requests

    report(
        "bench_serving_overhead",
        f"serving bookkeeping per request ({n_requests} requests, 1 device, best of 3)\n"
        f"  legacy Router tick drain:       {router_us:8.2f} us/request\n"
        f"  event-loop scheduler (futures): {scheduler_us:8.2f} us/request\n"
        f"  + PredictResponse objects:      {result_us:8.2f} us/request (lazy, on result())",
    )
    assert scheduler_us <= router_us


def test_least_loaded_beats_hash_p99_under_zipf(report):
    """least-loaded routing wins p99 latency on Zipf traffic, 8 devices."""
    with precision("edge"):
        package = package_for_edge(make_serving_learner())
        pool = np.random.default_rng(3).normal(size=(4096, N_FEATURES))
        fleet = build_fleet(package, 8)
        for device in fleet.devices:
            device.infer(pool[:8])  # warm every engine cache

        def routed_p99(routing: str):
            client = serve(fleet, routing=routing, seed=7)
            for requests in _ticks(pool, "zipf"):
                client.submit_many(requests)
                client.drain()  # tick-by-tick, as an online server would
            rep = client.report()
            shares = [s.requests for s in rep.per_device.values()]
            return rep.latency_percentile(99.0), rep.mean_latency_seconds, max(shares)

        hash_p99, hash_mean, hash_max_share = routed_p99("hash")
        ll_p99, ll_mean, ll_max_share = routed_p99("least-loaded")

    report(
        "bench_serving_p99",
        "routing policy p99 under Zipf skew (4096 req/tick x 8 ticks, 8 devices)\n"
        f"  hash:         p99 {hash_p99 * 1e3:8.2f} ms   mean {hash_mean * 1e3:8.2f} ms"
        f"   hottest device {hash_max_share} requests\n"
        f"  least-loaded: p99 {ll_p99 * 1e3:8.2f} ms   mean {ll_mean * 1e3:8.2f} ms"
        f"   hottest device {ll_max_share} requests\n"
        f"  p99 win:      {hash_p99 / ll_p99:8.2f}x",
    )
    assert ll_p99 < hash_p99


def test_one_client_api_across_layers(report):
    """Learner, platform and 1-device fleet answer identically via serve()."""
    with precision("edge"):
        learner = make_serving_learner()
        package = package_for_edge(learner)
        pool = np.random.default_rng(4).normal(size=(512, N_FEATURES))

        platform = MagnetoPlatform(learner.config, seed=0)
        platform.cloud.learner = learner
        platform.cloud.history = object()
        platform.deploy_to_edge()
        fleet = build_fleet(package, 1)

        spec_ticks = _ticks(pool[:512])
        outputs = {}
        for label, target in (
            ("learner", learner),
            ("platform", platform),
            ("fleet", fleet),
        ):
            client = serve(target, routing="hash", seed=7)
            futures = []
            for requests in spec_ticks:
                futures.extend(client.submit_many(requests))
            client.drain()
            outputs[label] = np.concatenate(
                [future.result().class_ids for future in futures]
            )

    platform_equal = bool(np.array_equal(outputs["learner"], outputs["platform"]))
    fleet_equal = bool(np.array_equal(outputs["learner"], outputs["fleet"]))
    report(
        "bench_serving_layers",
        "one client API across layers (identical request stream)\n"
        f"  windows served per layer:  {outputs['learner'].shape[0]}\n"
        f"  platform == learner:       {platform_equal}\n"
        f"  1-device fleet == learner: {fleet_equal}",
    )
    assert platform_equal and fleet_equal


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_scheduler_overhead_at_most_router(_report)
    test_least_loaded_beats_hash_p99_under_zipf(_report)
    test_one_client_api_across_layers(_report)
    print("\nall serving benchmarks passed")
