"""Benchmark: regenerate Figure 4 (confusion matrices, new class 'Run').

The paper's claim: the re-trained model predicts a large block of 'Walk'
samples as 'Run' (it forgot Walk), while PILOTE keeps the two apart.  The
benchmark prints both confusion matrices and the Walk→Run misclassification
rates.
"""

from repro.experiments import figure4


def test_figure4_reproduction(benchmark, settings, report):
    result = benchmark.pedantic(lambda: figure4.run(settings), rounds=1, iterations=1)
    report("figure4", result.to_text())
    # Shape check: PILOTE should not confuse Walk with Run more than the
    # re-trained model does (small tolerance for run-to-run noise).
    assert (
        result.walk_to_run_rate["pilote"]
        <= result.walk_to_run_rate["re-trained"] + 0.05
    )
    for matrix in result.matrices.values():
        assert matrix.accuracy() > 0.2
