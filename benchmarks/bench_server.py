"""Benchmarks of the network front door (`repro.server`).

Two gates, both on a loopback socket so they run anywhere:

1. **Closed-loop loopback throughput** — a compute-bound fleet workload
   driven through the full network path (closed-loop client → wire frames
   → asyncio bridge → scheduler → process executor) must sustain at least
   **90 %** of the in-process process-executor throughput on the same
   stream, with client-measured end-to-end p50/p99 and ``slo_attainment``
   reported.  The network front door must cost pipelining overhead, not a
   serialization bottleneck.  Like bench_workers' speedup gate, the
   required ratio scales with the hardware actually available: the 90 %
   acceptance target needs enough cores for the event loop (which runs
   both the load client and the server here) to overlap with the worker
   pool; with fewer cores the frame encode/decode work adds *inline* to
   the critical path and the gate degrades to an overhead bound.
2. **Graceful shutdown exactly-once** — shutting the server down in the
   middle of a seeded Zipf stream loses zero futures: on the client every
   sent request lands in exactly one bucket (answered or a typed error),
   and on the server ``received == answered + failed``.

Run via pytest (``python -m pytest benchmarks/bench_server.py -q -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_server.py``).
"""

from __future__ import annotations

import os

# Pin BLAS to one thread per process *before* numpy initialises — same
# reasoning as bench_workers.py: otherwise the baseline parallelises its
# GEMMs across every core and the ratio measures thread-pool contention.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import asyncio
import time

import numpy as np

from repro.backend import precision
from repro.core.config import PiloteConfig
from repro.edge.transfer import package_for_edge
from repro.fleet import FleetCoordinator, TrafficGenerator, WorkloadSpec
from repro.server import AsyncConnection, ServingServer, run_load, wire
from repro.server.simulation import SIM_NODE, make_serving_learner
from repro.serving import serve

#: Worker-pool size under test (matches bench_workers; CI pins 2).
N_WORKERS = int(os.environ.get("BENCH_WORKERS", "4"))

#: Same compute-bound backbone as bench_workers: per-batch GEMMs dominate,
#: so the gate isolates the front door's overhead rather than BLAS noise.
HEAVY_CONFIG = PiloteConfig(
    hidden_dims=(512, 256), embedding_dim=32, cache_size=1200, seed=0
)
N_FEATURES = 80

#: Reporting-only end-to-end target for the loopback run (generous: the
#: gate is the throughput ratio, the attainment line is the observability
#: deliverable).
SLO_TARGET_MS = 10_000.0


def usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def build_fleet(package, n_devices: int, config=HEAVY_CONFIG) -> FleetCoordinator:
    fleet = FleetCoordinator(config, profiles=(SIM_NODE,), seed=0)
    fleet.provision(n_devices)
    fleet.deploy(package)
    for device in fleet.devices:
        device.engine.warm()
    return fleet


def _compute_bound_ticks(pool, n_ticks: int = 4, per_tick: int = 64):
    spec = WorkloadSpec(
        pattern="zipf", n_users=500, requests_per_tick=per_tick,
        n_ticks=n_ticks, windows_per_request=64,
    )
    return list(TrafficGenerator(pool, spec, seed=7).ticks())


def _drain_stream(client, ticks):
    """Submit+drain a tick stream; returns (windows answered, wall seconds)."""
    futures = []
    start = time.perf_counter()
    for requests in ticks:
        futures.extend(client.submit_many(requests))
        client.drain()
    wall = time.perf_counter() - start
    windows = sum(f.result().class_ids.shape[0] for f in futures)
    return windows, wall


def test_closed_loop_loopback_vs_in_process(report):
    """Network path sustains >= 90% of in-process executor throughput."""
    cores = usable_cores()
    with precision("edge"):
        package = package_for_edge(
            make_serving_learner(HEAVY_CONFIG, n_features=N_FEATURES)
        )
        pool = (
            np.random.default_rng(3)
            .normal(size=(4096, N_FEATURES))
            .astype(np.float32)
        )
        ticks = _compute_bound_ticks(pool)
        requests = [request for tick in ticks for request in tick]
        n_windows = sum(request.n_windows for request in requests)
        probe = ticks[0][:4]

        # Best-of-3 on both sides: one warm worker pool each, repeated
        # passes over the same stream, keep the fastest — the same
        # variance-damping bench_workers uses for its overhead gate.
        baseline_fleet = build_fleet(package, N_WORKERS)
        with serve(
            baseline_fleet, routing="hash", seed=7,
            executor="process", workers=N_WORKERS,
        ) as client:
            client.submit_many(probe)
            client.drain()  # spin up workers + ship snapshots, untimed
            baseline_wall = None
            for _ in range(3):
                baseline_windows, wall = _drain_stream(client, ticks)
                baseline_wall = wall if baseline_wall is None else min(baseline_wall, wall)
        in_process_wps = baseline_windows / baseline_wall

        async def drive():
            fleet = build_fleet(package, N_WORKERS)
            server = ServingServer(
                serve(
                    fleet, routing="hash", seed=7,
                    executor="process", workers=N_WORKERS,
                ),
                slo_target_ms=SLO_TARGET_MS,
            )
            host, port = await server.start()
            try:
                # Warm the worker pool over the wire, outside the timed run.
                async with await AsyncConnection.open(host, port) as probe_conn:
                    for request in probe:
                        await probe_conn.predict(request.user_id, request.features)
                best = None
                for _ in range(3):
                    load = await run_load(
                        host, port, requests,
                        connections=4, window=32, slo_target_ms=SLO_TARGET_MS,
                    )
                    if best is None or load.throughput_wps > best.throughput_wps:
                        best = load
                return best
            finally:
                await server.stop()

        load = asyncio.run(drive())

    ratio = load.throughput_wps / in_process_wps
    if cores >= N_WORKERS + 2:
        required = 0.90  # loop (client + server) and workers all overlap
    elif cores >= 2:
        required = 0.55  # partial overlap
    else:
        # One usable core: every byte of frame work adds inline to the
        # critical path, so the gate bounds serialization overhead instead.
        required = 0.40
    gate_note = (
        ""
        if cores >= N_WORKERS + 2
        else f", acceptance target 90% needs >= {N_WORKERS + 2} cores"
    )
    report(
        "bench_server_loopback",
        f"closed-loop loopback client vs in-process process executor "
        f"({N_WORKERS} workers, {cores} usable cores, "
        f"{load.connections} connections x {load.window} window)\n"
        f"  windows served:           {n_windows}\n"
        f"  in-process:               {baseline_wall:8.3f} s "
        f"({in_process_wps:9.0f} windows/s)\n"
        f"  over loopback socket:     {load.wall_seconds:8.3f} s "
        f"({load.throughput_wps:9.0f} windows/s)\n"
        f"  throughput ratio:         {ratio:8.2%}  (gate: >= {required:.0%}"
        f"{gate_note})\n"
        f"  e2e p50 / p99:            {load.e2e_percentile(50.0):8.1f} / "
        f"{load.e2e_percentile(99.0):.1f} ms\n"
        f"  slo_attainment:           {load.slo_attainment:8.4f} "
        f"(target {SLO_TARGET_MS:g} ms end-to-end)",
        data={
            "workers": N_WORKERS,
            "usable_cores": cores,
            "windows": n_windows,
            "in_process_windows_per_s": in_process_wps,
            "loopback_windows_per_s": load.throughput_wps,
            "throughput_ratio": ratio,
            "e2e_p50_ms": load.e2e_percentile(50.0),
            "e2e_p99_ms": load.e2e_percentile(99.0),
            "slo_target_ms": SLO_TARGET_MS,
            "slo_attainment": load.slo_attainment,
            "gate_ratio": required,
            "acceptance_ratio": 0.90,
        },
    )
    assert load.sent == len(requests) == load.answered + load.failed
    assert load.failed == 0
    assert load.windows_answered == n_windows
    assert ratio >= required


def test_graceful_shutdown_loses_zero_futures(report):
    """Mid-stream shutdown: every request answered-or-failed exactly once."""
    small_config = PiloteConfig(hidden_dims=(64, 32), embedding_dim=16, seed=0)
    with precision("edge"):
        learner = make_serving_learner(
            small_config, n_classes=4, per_class=60, n_features=N_FEATURES
        )
        pool = (
            np.random.default_rng(11)
            .normal(size=(1024, N_FEATURES))
            .astype(np.float32)
        )
        spec = WorkloadSpec(
            pattern="zipf", n_users=64, requests_per_tick=384, n_ticks=1,
            windows_per_request=4,
        )
        requests = TrafficGenerator(pool, spec, seed=11).requests()

        async def scenario():
            server = ServingServer(serve(learner, executor="thread", workers=2))
            host, port = await server.start()
            load_task = asyncio.get_running_loop().create_task(
                run_load(
                    host, port, requests,
                    connections=3, window=16, fetch_server_stats=False,
                )
            )
            while server.stats.received < len(requests) // 4:
                await asyncio.sleep(0.001)
            await server.stop(grace_seconds=0.1)
            return await load_task, server.stats

        load, stats = asyncio.run(scenario())

    client_exact = load.sent == load.answered + load.failed
    server_exact = stats.received == stats.answered + stats.failed
    typed = set(load.failed_by_type) | set(stats.failed_by_type)
    report(
        "bench_server_shutdown",
        f"graceful shutdown mid-stream ({len(requests)} request stream, "
        f"stopped after {len(requests) // 4} received)\n"
        f"  client: sent {load.sent} = answered {load.answered} "
        f"+ failed {load.failed}  (exactly once: {client_exact})\n"
        f"  server: received {stats.received} = answered {stats.answered} "
        f"+ failed {stats.failed}  (exactly once: {server_exact})\n"
        f"  failure types (all wire-typed): {sorted(typed)}",
        data={
            "stream": len(requests),
            "client_sent": load.sent,
            "client_answered": load.answered,
            "client_failed": load.failed,
            "server_received": stats.received,
            "server_answered": stats.answered,
            "server_failed": stats.failed,
            "client_exactly_once": client_exact,
            "server_exactly_once": server_exact,
            "failed_by_type": dict(load.failed_by_type),
        },
    )
    assert client_exact
    assert server_exact
    assert typed <= set(wire.WIRE_ERRORS)
    assert stats.received >= len(requests) // 4


if __name__ == "__main__":
    def _report(name, text, data=None):
        print()
        print(text)
        return name

    test_closed_loop_loopback_vs_in_process(_report)
    test_graceful_shutdown_loses_zero_futures(_report)
    print("\nall front-door benchmarks passed")
