"""The network front door: asyncio bridge, socket server, closed-loop load.

Everything in ``examples/serving_api.py`` resolves through explicit
``drain()`` calls on an in-process client.  This example opens the system
to *outside* callers (:mod:`repro.server`), in three layers:

1. **Async bridge** — :class:`~repro.server.AsyncServingClient` wraps any
   synchronous serving client in native ``asyncio`` futures: no polling,
   no thread per request; completions cross from the scheduler's done
   callbacks onto the event loop as batches finish.
2. **Socket server** — :class:`~repro.server.ServingServer` answers a
   length-prefixed binary wire protocol on a real TCP socket: pipelined
   requests per connection, per-client backpressure, typed error frames,
   a stats endpoint, and graceful shutdown that drains in-flight work.
3. **Closed-loop client** — :func:`~repro.server.run_load` drives the
   server like a load generator and accounts every request exactly once,
   reporting end-to-end p50/p99 and ``slo_attainment``.

Run with::

    python examples/async_serving.py

The CLI wraps the same layers: ``pilote serve-net`` hosts a fleet behind
the socket server, ``pilote bench-client`` is this load generator.
"""

import asyncio

import numpy as np

from repro.exceptions import ServingError
from repro.fleet import TrafficGenerator, WorkloadSpec
from repro.server import AsyncConnection, AsyncServingClient, ServingServer, run_load
from repro.server.bridge import RequestSpec
from repro.server.simulation import make_serving_learner
from repro.serving import serve


async def bridge_demo(learner, pool) -> None:
    # Layer 1: the bridge alone.  submit_spec() returns an asyncio.Future
    # immediately; co-arriving requests coalesce into the same engine
    # batches an in-process caller would get, and `await` replaces the
    # explicit drain() loop.
    bridge = AsyncServingClient(serve(learner))
    futures = [
        bridge.submit_spec(RequestSpec(
            user_id=user, features=pool[user * 4:(user + 1) * 4],
            relative_deadline_seconds=5.0,
        ))
        for user in range(6)
    ]
    responses = await asyncio.gather(*futures)
    print(f"bridge: {len(responses)} awaited responses, "
          f"{sum(r.class_ids.shape[0] for r in responses)} windows, "
          f"inflight now {bridge.inflight}")
    await bridge.aclose()


async def server_demo(learner, pool) -> None:
    # Layer 2: the same bridge behind a real TCP socket (port 0 = ephemeral).
    server = ServingServer(serve(learner), slo_target_ms=1000.0)
    host, port = await server.start()
    print(f"server: listening on {host}:{port}")

    async with await AsyncConnection.open(host, port) as connection:
        # Pipelined requests multiplex on one socket by request_id.
        responses = await asyncio.gather(*[
            connection.predict(user, pool[user * 4:(user + 1) * 4],
                               deadline_ms=500.0, metadata={"demo": user})
            for user in range(4)
        ])
        print(f"wire: {len(responses)} pipelined answers, first served by "
              f"device {responses[0].device_id} in "
              f"{responses[0].e2e_server_ms:.2f} ms server-side "
              f"(deadline missed: {responses[0].deadline_missed})")

        # Errors come back as typed frames; the connection survives them.
        try:
            await connection.predict(0, np.zeros((0, 0), dtype=np.float32))
        except ServingError as exc:
            print(f"wire: malformed request answered with "
                  f"{type(exc).__name__}: {exc}")

        stats = await connection.stats()
        print(f"stats endpoint: {stats['server']['answered']} answered, "
              f"slo_attainment {stats['server']['slo_attainment']:.3f}")

    # Layer 3: closed-loop load from a seeded Zipf stream.  run_load keeps
    # `window` requests in flight per connection and buckets every request
    # exactly once (sent == answered + failed).
    spec = WorkloadSpec(pattern="zipf", n_users=50, requests_per_tick=128,
                        n_ticks=1, windows_per_request=4, deadline_seconds=2.0)
    requests = TrafficGenerator(pool, spec, seed=11).requests()
    load = await run_load(host, port, requests,
                          connections=3, window=16, slo_target_ms=1000.0)
    print()
    print(load.to_text())
    # LoadReport.to_dict()/to_json() is the same export the stats endpoint
    # and `pilote bench-client` ship — ready for dashboards.
    print(f"\njson export keys: {sorted(load.to_dict())}")

    # Graceful shutdown: in-flight work drains within the grace window;
    # anything still pending fails typed, never silently dropped.
    await server.stop(grace_seconds=1.0)
    print(f"shutdown: received {server.stats.received} = "
          f"answered {server.stats.answered} + failed {server.stats.failed}")


def main() -> None:
    learner = make_serving_learner(n_classes=4, per_class=80, seed=3)
    pool = (np.random.default_rng(5)
            .normal(size=(1024, 80))
            .astype(np.float32))
    asyncio.run(bridge_demo(learner, pool))
    print()
    asyncio.run(server_demo(learner, pool))


if __name__ == "__main__":
    main()
