"""The full MAGNETO pipeline: raw sensor windows → cloud pre-training → edge learning.

Unlike the other examples (which start from the ready-made feature dataset),
this one exercises every substrate end to end, the way a deployment would:

1. simulate raw 22-channel sensor recordings for each activity;
2. preprocess (denoise, window, extract the 80 statistical features, z-score);
3. pre-train on the cloud and package the model + support set;
4. "ship" the package to an edge device with a storage budget;
5. learn a newly observed activity on the device and profile the update
   (per-epoch latency, storage, inference latency per window).

Run with::

    python examples/magneto_pipeline.py
"""

import numpy as np

from repro.core.config import PiloteConfig
from repro.data import Activity, HARDataset
from repro.data.sensors import default_sensor_suite
from repro.data.streams import build_incremental_scenario
from repro.data.synthetic import SyntheticSensorGenerator
from repro.edge.device import DEVICE_PROFILES
from repro.edge.magneto import MagnetoPlatform
from repro.edge.profiler import EdgeProfiler
from repro.features.extractor import StatisticalFeatureExtractor
from repro.timeseries.normalize import z_score


def build_dataset(samples_per_class: int = 200, seed: int = 3) -> HARDataset:
    """Raw sensor simulation → preprocessing → 80-feature dataset."""
    suite = default_sensor_suite()
    generator = SyntheticSensorGenerator(suite=suite, seed=seed)
    windows, labels = generator.generate_dataset(samples_per_class)
    extractor = StatisticalFeatureExtractor(
        suite.triaxial_groups, sampling_rate_hz=suite.sampling_rate_hz
    )
    features = z_score(extractor.transform(windows))
    label_names = {int(a): a.display_name for a in Activity}
    return HARDataset(features=features, labels=labels, label_names=label_names)


def main() -> None:
    print("simulating raw sensor recordings and extracting features...")
    dataset = build_dataset()
    scenario = build_incremental_scenario(dataset, [Activity.ESCOOTER], rng=3)
    print(f"pre-training activities: {[dataset.class_name(c) for c in scenario.old_classes]}")
    print(f"activity observed later on the edge: "
          f"{[dataset.class_name(c) for c in scenario.new_classes]}")

    config = PiloteConfig(
        hidden_dims=(128, 64),
        embedding_dim=32,
        batch_size=48,
        max_epochs_pretrain=15,
        max_epochs_increment=12,
        cache_size=400,
        seed=3,
    )
    platform = MagnetoPlatform(config, device_profile=DEVICE_PROFILES["smartphone"], seed=3)

    print("\n[cloud] pre-training the warm-start model...")
    history = platform.cloud_pretrain(
        scenario.old_train, scenario.old_validation, exemplars_per_class=100
    )
    print(f"[cloud] {history.epochs_run} epochs, final loss {history.final_train_loss():.4f}")

    package = platform.deploy_to_edge()
    print("[transfer] shipped to the edge device:")
    for key, value in package.summary().items():
        print(f"    {key:<22}{value:>14.1f}")

    print("\n[edge] profiling the incremental update on the new activity...")
    profiler = EdgeProfiler()
    report = profiler.profile_increment(
        platform.edge_learner,
        scenario.new_train,
        scenario.new_validation,
        inference_data=scenario.test,
    )
    # The profiler drove the update directly, so refresh the device's ledger.
    platform.device.store("support_set", platform.edge_learner.support_set_nbytes())
    platform.device.store("prototypes", platform.edge_learner.prototypes.nbytes())
    for key, value in report.summary().items():
        print(f"    {key:<28}{value:>12.4f}")
    print("    extrapolated mean epoch seconds on a wearable: "
          f"{report.scaled_to(DEVICE_PROFILES['wearable']).mean_epoch_seconds:.3f}")

    # Serving goes through the unified client (same API as a fleet).
    predictions = platform.serving_client().predict(scenario.test.features)
    accuracy = float(np.mean(predictions == scenario.test.labels))
    print(f"\n[edge] accuracy on all {len(scenario.all_classes)} activities: {accuracy:.4f}")
    print("[edge] storage ledger:")
    for name, nbytes in platform.storage_report().items():
        print(f"    {name:<14}{nbytes / 1024:>10.1f} KB")


if __name__ == "__main__":
    main()
