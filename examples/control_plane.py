"""Tour of the self-tuning control plane: shedding, hedging, autoscaling, chaos.

One pre-built serving fleet is driven through the control stack
(:mod:`repro.control`) four ways:

1. the one-liner — ``serve(fleet, adaptive=True)`` attaches the default
   controller stack (load-shedder, hedged requests on multi-device fleets,
   pool autoscaler on resizable executors);
2. a hand-built :class:`~repro.control.ControlPlane` with tuned controllers,
   and the rolling signal window they all read
   (:class:`~repro.control.SignalBus`);
3. an overloaded Zipf stream with a mid-run worker-death storm, run twice —
   static vs adaptive — showing the hedged-request escape from a dying lane
   and the exactly-once ledger behind it;
4. a chaos scenario (:func:`~repro.control.run_chaos`) proving the
   conservation law every run must satisfy: ``sent == answered + failed``
   with zero unresolved futures and zero double-fired callbacks.

The same machinery runs from the CLI: ``pilote chaos`` executes the whole
scenario suite in both modes, ``pilote fleet-sim --adaptive`` runs the
fleet simulation with the default stack attached, and the network server
(``pilote serve-net``) exposes each controller's counters in its ``stats``
frame once the bridged client has a plane attached.

Run with::

    python examples/control_plane.py
"""

import numpy as np

from repro.control import (
    ChaosSpec,
    ControlPlane,
    FlakyDevice,
    HedgedRequests,
    LoadShedder,
    PoolAutoscaler,
    run_chaos,
)
from repro.fleet import TrafficGenerator, WorkloadSpec
from repro.server.simulation import build_serving_fleet, make_serving_learner
from repro.serving import serve

N_FEATURES = 80


def main() -> None:
    pool = np.random.default_rng(3).normal(size=(2048, N_FEATURES)).astype(np.float32)

    # 1. The one-liner: default controllers picked for the target.
    client = serve(build_serving_fleet(4, seed=0), adaptive=True)
    stats = client.control_stats()
    print(f"default stack for a 4-device fleet: {stats['controllers']}")
    client.close()

    # 2. A hand-built plane: tuned controllers over the shared signal bus.
    client = serve(
        build_serving_fleet(4, seed=0),
        routing="p2c", scheduling="edf", seed=0,
        executor="thread", workers=2,
    )
    ControlPlane(
        client,
        [
            LoadShedder(high_queue_per_lane=64.0, low_queue_per_lane=16.0),
            HedgedRequests(slack_seconds=0.001, unhealthy_failures=1),
            PoolAutoscaler(high_queue_per_worker=32.0, low_queue_per_worker=4.0),
        ],
        window=8,  # rolling signal window, in submission waves
    )
    print(f"hand-built stack: {client.control_stats()['controllers']}")
    client.close()

    # 3. Overload + worker-death storm, static vs adaptive.  The dying
    # lane fails fast, looks idle, and keeps attracting p2c traffic; the
    # hedging controller's unhealthy-lane signal breaks that vortex by
    # racing a clone on the healthy sibling — first completion wins.
    workload = WorkloadSpec(
        pattern="zipf", n_users=300, requests_per_tick=96, n_ticks=10,
        tick_seconds=0.02, deadline_seconds=0.05,
    )

    def storm_run(adaptive: bool):
        fleet = build_serving_fleet(2, seed=0)
        flaky = FlakyDevice(fleet.devices[0])
        fleet.devices[0] = flaky
        run_client = serve(
            fleet, routing="p2c", scheduling="edf", seed=7, adaptive=adaptive
        )
        for tick, requests in enumerate(
            TrafficGenerator(pool, workload, seed=7).ticks()
        ):
            flaky.failing = 3 <= tick <= 6  # the storm window
            run_client.submit_many(requests)
            run_client.drain()
        report = run_client.report()
        answered = report.total_requests
        control = run_client.control_stats()
        run_client.close()
        return answered, report.total_failed, control

    static_ok, static_failed, _ = storm_run(adaptive=False)
    adaptive_ok, adaptive_failed, control = storm_run(adaptive=True)
    hedging = control["hedging"]
    print("\nworker-death storm (2 devices, lane 0 dying for 4 of 10 ticks):")
    print(f"  static   p2c+edf: {static_ok} answered, {static_failed} failed")
    print(f"  adaptive p2c+edf: {adaptive_ok} answered, {adaptive_failed} failed")
    print(
        f"  hedges: {hedging['fired']} fired, {hedging['hedge_wins']} won on "
        f"the sibling, {hedging['losers_cancelled']} losers cancelled, "
        f"{hedging['losers_served']} wasted (served after the twin won)"
    )

    # 4. A chaos run and its conservation law.
    report = run_chaos(
        ChaosSpec(
            name="demo-storm", scenario="worker-storm", seed=5,
            n_devices=2, n_ticks=6, requests_per_tick=24,
            storm_ticks=(2, 3), storm_devices=(0,),
        ),
        adaptive=True,
    )
    print(f"\n{report.to_text()}")
    assert report.exactly_once, "chaos must never drop or double-answer"


if __name__ == "__main__":
    main()
