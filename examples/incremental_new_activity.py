"""Compare the paper's three strategies on one incremental scenario (Table 2, one row).

For a chosen held-out activity this example runs the *Pre-trained*,
*Re-trained* and *PILOTE* strategies — all sharing the same cloud pre-trained
model — and prints their accuracy on the five-activity test set together with
the per-class confusion structure (the Figure 4 view).

Run with::

    python examples/incremental_new_activity.py            # new class = Run
    python examples/incremental_new_activity.py Walk       # any other activity
"""

import sys

from repro.core.config import PiloteConfig
from repro.data import Activity, make_feature_dataset
from repro.data.activities import activity_from_name
from repro.evaluation.runner import ExperimentRunner
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.forgetting import new_class_accuracy, old_class_accuracy


def main() -> None:
    new_activity = Activity.RUN
    if len(sys.argv) > 1:
        new_activity = activity_from_name(sys.argv[1])
    print(f"held-out (new) activity: {new_activity.display_name}")

    dataset = make_feature_dataset(samples_per_class=250, seed=7)
    config = PiloteConfig(
        hidden_dims=(128, 64),
        embedding_dim=32,
        batch_size=48,
        max_epochs_pretrain=15,
        max_epochs_increment=12,
        cache_size=800,
        seed=7,
    )
    runner = ExperimentRunner(config, keep_learners=True)
    comparison = runner.run_scenario(
        dataset, int(new_activity), exemplars_per_class=100, rng=7
    )
    scenario = comparison.scenario
    label_names = {int(a): a.display_name for a in Activity}

    print()
    print(f"{'method':<14}{'accuracy':>10}{'old acc.':>10}{'new acc.':>10}")
    print("-" * 44)
    for method, result in comparison.methods.items():
        old = old_class_accuracy(scenario.test.labels, result.predictions, scenario.old_classes)
        new = new_class_accuracy(scenario.test.labels, result.predictions, scenario.new_classes)
        print(f"{method:<14}{result.accuracy:>10.4f}{old:>10.4f}{new:>10.4f}")

    print()
    for method in ("re-trained", "pilote"):
        matrix = ConfusionMatrix.from_predictions(
            scenario.test.labels,
            comparison.methods[method].predictions,
            classes=sorted(label_names),
            label_names=label_names,
        )
        print(f"confusion matrix — {method}")
        print(matrix.to_text())
        print()


if __name__ == "__main__":
    main()
