"""Extreme edge: learning a new activity from a handful of samples (Figure 7 view).

New activities recorded on an edge device arrive a few windows at a time.  The
example fixes the old-class support set and sweeps the number of available
new-class ('Run') samples down to a dozen, comparing PILOTE against the
re-trained and pre-trained strategies.

Run with::

    python examples/extreme_edge_few_shot.py
"""

from repro.core.config import PiloteConfig
from repro.data import Activity, make_feature_dataset
from repro.data.streams import build_incremental_scenario
from repro.evaluation.runner import ExperimentRunner
from repro.viz.ascii import ascii_line_plot

NEW_CLASS_SAMPLES = (10, 25, 50, 100, 150)


def main() -> None:
    dataset = make_feature_dataset(samples_per_class=250, seed=29)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=29)
    config = PiloteConfig(
        hidden_dims=(128, 64),
        embedding_dim=32,
        batch_size=48,
        max_epochs_pretrain=15,
        max_epochs_increment=10,
        cache_size=800,
        seed=29,
    )
    runner = ExperimentRunner(config)
    pretrained = runner.pretrain(scenario, exemplars_per_class=100, rng=29)

    series = {"pilote": [], "re-trained": [], "pre-trained": []}
    print(f"{'new-class samples':>18}{'pre-trained':>13}{'re-trained':>12}{'pilote':>9}")
    for count in NEW_CLASS_SAMPLES:
        comparison = runner.compare(
            scenario, pretrained=pretrained, new_class_samples=count, rng=29
        )
        accuracies = comparison.summary()
        for method in series:
            series[method].append(accuracies[method])
        print(
            f"{count:>18d}{accuracies['pre-trained']:>13.4f}"
            f"{accuracies['re-trained']:>12.4f}{accuracies['pilote']:>9.4f}"
        )

    print()
    print(
        ascii_line_plot(
            NEW_CLASS_SAMPLES, series, title="accuracy vs. number of new-class samples"
        )
    )


if __name__ == "__main__":
    main()
