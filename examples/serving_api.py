"""Tour of the unified serving API: protocol, futures, routing, rollout.

One pre-trained PILOTE learner is served six ways through the *same*
request/response protocol (:mod:`repro.serving`):

1. bare learner — ``serve(learner).predict(...)`` one-liner;
2. futures with deadlines and metadata on the simulated clock;
3. an 8-device fleet under Zipf-skewed traffic, comparing the ``hash``
   (sticky per user) and ``least-loaded`` routing policies on p99 latency;
4. a staged rollout followed by an A/B rollout with per-cohort reporting;
5. deadline-aware scheduling — the same overloaded deadline workload under
   ``fifo`` vs ``edf`` queue order, with the served/missed/expired SLO
   breakdown from the routing report;
6. pluggable executors — one workload drained through the ``serial``
   (inline, simulated clock), ``thread`` and ``process`` (real worker
   processes) executors, with identical predictions and the measured vs
   modeled clock distinction in the reports.

Run with::

    python examples/serving_api.py
"""

import numpy as np

from repro import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data import Activity, build_incremental_scenario, make_feature_dataset
from repro.edge.transfer import package_for_edge
from repro.fleet import FleetCoordinator, TrafficGenerator, WorkloadSpec
from repro.serving import ABRollout, PredictRequest, StagedRollout, serve


def build_learner(scenario, seed: int = 0) -> PILOTE:
    config = PiloteConfig(
        hidden_dims=(64, 32), embedding_dim=16, batch_size=32,
        max_epochs_pretrain=8, cache_size=200, seed=seed,
    )
    learner = PILOTE(config, seed=seed)
    learner.pretrain(scenario.old_train, scenario.old_validation,
                     exemplars_per_class=40)
    return learner


def main() -> None:
    dataset = make_feature_dataset(samples_per_class=150, seed=3)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=3)
    learner = build_learner(scenario)
    pool = scenario.test.features

    # 1. The one-liner: a bare learner behind the unified client.
    client = serve(learner)
    print(f"learner client: {client.predict(pool[:8]).shape[0]} windows answered")

    # 2. Futures on the simulated clock, with a deadline and metadata.
    pending = client.submit(PredictRequest(
        user_id=7, features=pool[:4], deadline_seconds=5.0,
        metadata={"session": "demo"},
    ))
    client.drain()
    response = pending.result()
    print(f"future: user {response.user_id} served on device "
          f"{response.device_id} in {response.latency_seconds * 1e3:.3f} ms "
          f"(deadline missed: {response.deadline_missed}, "
          f"metadata echoed: {response.metadata})")

    # 3. An 8-device fleet: hash vs least-loaded routing under Zipf skew.
    package = package_for_edge(learner)
    workload = WorkloadSpec(pattern="zipf", n_users=300,
                            requests_per_tick=256, n_ticks=6)
    for routing in ("hash", "least-loaded"):
        fleet = FleetCoordinator(learner.config, seed=0)
        fleet.provision(8)
        fleet.deploy(package)
        fleet_client = serve(fleet, routing=routing, seed=0)
        traffic = TrafficGenerator(pool, workload, seed=11)
        for requests in traffic.ticks():
            fleet_client.submit_many(requests)
        fleet_client.drain()
        report = fleet_client.report()
        print(f"fleet/{routing:<13} p99 latency "
              f"{report.p99_latency_seconds * 1e3:8.2f} ms  "
              f"(aggregate {report.aggregate_throughput:8.0f} windows/s)")

    # 4. Rollout policies on FleetCoordinator.deploy.
    fleet = FleetCoordinator(learner.config, seed=0)
    fleet.provision(8)
    fleet.deploy(package, rollout=StagedRollout(fractions=(0.25, 1.0)))
    print(f"staged rollout: stage 0 deployed to "
          f"{sum(d.is_deployed for d in fleet.devices)}/8 devices; "
          f"advancing -> {len(fleet.advance_rollout())} more")

    ab_fleet = FleetCoordinator(learner.config, seed=0)
    ab_fleet.provision(8)
    ab_fleet.deploy(package)                      # baseline everywhere
    ab_fleet.deploy(package, rollout=ABRollout(treatment_fraction=0.5))
    ab_client = serve(ab_fleet, seed=0)
    traffic = TrafficGenerator(pool, workload, seed=11)
    for requests in traffic.ticks():
        ab_client.submit_many(requests)
    ab_client.drain()
    print()
    print(ab_fleet.rollout_report(scenario.test, serving=ab_client.report()).to_text())

    # 5. Deadline-aware scheduling: FIFO vs EDF on an overloaded deadline
    #    workload (1-in-4 requests urgent, the rest relaxed).
    deadline_workload = WorkloadSpec(
        pattern="zipf", n_users=300, requests_per_tick=512, n_ticks=8,
        tick_seconds=1e-4, deadline_seconds=2e-3,
        deadline_multipliers=(1.0, 50.0, 50.0, 50.0),
    )
    print()
    for scheduling in ("fifo", "edf"):
        fleet = FleetCoordinator(learner.config, seed=0)
        fleet.provision(2)
        fleet.deploy(package)
        client = serve(fleet, routing="hash", scheduling=scheduling, seed=0)
        for requests in TrafficGenerator(pool, deadline_workload, seed=11).ticks():
            client.submit_many(requests)
        client.drain()
        breakdown = client.report().deadline_breakdown()
        print(f"scheduling={scheduling:<5} deadline SLO: "
              f"{breakdown['served']} served in deadline, "
              f"{breakdown['missed']} missed, {breakdown['expired']} expired "
              f"(attainment {client.report().deadline_attainment:.3f})")

    # 6. Executors: the same workload drained inline (serial, simulated
    #    clock), on a thread pool, and on real worker processes serving
    #    shipped engine snapshots.  Predictions are identical; what changes
    #    is where batches run and whether the report's clock is modeled
    #    ("simulated") or measured ("wall").
    executor_workload = WorkloadSpec(pattern="zipf", n_users=300,
                                     requests_per_tick=128, n_ticks=4)
    print()
    baseline = None
    for executor in ("serial", "thread", "process"):
        fleet = FleetCoordinator(learner.config, seed=0)
        fleet.provision(4)
        fleet.deploy(package)
        with serve(fleet, routing="hash", seed=0, executor=executor,
                   workers=None if executor == "serial" else 2) as client:
            futures = []
            for requests in TrafficGenerator(pool, executor_workload, seed=11).ticks():
                futures.extend(client.submit_many(requests))
                client.drain()
            class_ids = np.concatenate([f.result().class_ids for f in futures])
            report = client.report()
        if baseline is None:
            baseline = class_ids
        print(f"executor={executor:<8} clock={report.clock:<10} "
              f"{report.aggregate_throughput:9.0f} windows/s  "
              f"predictions identical: {bool(np.array_equal(class_ids, baseline))}")


if __name__ == "__main__":
    main()
