"""Distributed incremental learning with the sharded collective backend.

The incremental update PILOTE runs on-device has two embarrassingly
class-parallel phases — herding exemplar selection and the prototype
refresh.  ``PILOTE(..., backend="sharded", shards=N)`` fans whole classes
out to a persistent pool of worker processes and folds the results back
through fixed-order collectives, so the sharded update is **bit-for-bit
identical** to the serial one — same exemplars, same prototypes, same
predictions — just faster when cores are available.

This example runs the quickstart scenario twice, serial and sharded, and
verifies the bit-exactness claim on the spot.  The same switch is available
on the CLI for any experiment::

    pilote table2 --scale quick --backend sharded --shards 4

and ``benchmarks/bench_collective.py`` gates both the bit-exactness and the
wall-clock scaling in CI.

Run with::

    python examples/sharded_increment.py            # 2 shards
    python examples/sharded_increment.py 4          # any shard count
"""

import sys

import numpy as np

from repro import PILOTE, PiloteConfig
from repro.data import Activity, build_incremental_scenario, make_feature_dataset


def run_pipeline(config, scenario, *, shards=None):
    """Pre-train + incremental update; returns the learner (caller closes)."""
    if shards is None:
        learner = PILOTE(config)
    else:
        learner = PILOTE(config, backend="sharded", shards=shards)
    learner.pretrain(
        scenario.old_train, scenario.old_validation, exemplars_per_class=100
    )
    learner.learn_new_classes(scenario.new_train, scenario.new_validation)
    return learner


def main() -> None:
    shards = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    dataset = make_feature_dataset(samples_per_class=250, seed=42)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=42)
    config = PiloteConfig.edge_lightweight(seed=42)

    serial = run_pipeline(config, scenario)
    sharded = run_pipeline(config, scenario, shards=shards)
    try:
        print(f"backend: {sharded.backend.describe()}")
        for name, learner in (("serial", serial), ("sharded", sharded)):
            phases = learner.phase_seconds
            breakdown = ", ".join(
                f"{phase} {seconds * 1e3:.1f} ms"
                for phase, seconds in sorted(phases.items())
            )
            print(f"  {name:<8} update phases: {breakdown}")

        # The collectives are fixed-order folds over whole-class units, so
        # the parallel run reproduces the serial arithmetic exactly — not
        # approximately.  Equality here is bitwise, no tolerance.
        predictions = {
            name: learner.predict(scenario.test.features)
            for name, learner in (("serial", serial), ("sharded", sharded))
        }
        prototypes_exact = all(
            np.array_equal(serial.prototypes.get(c), sharded.prototypes.get(c))
            for c in serial.prototypes.classes
        )
        exemplars_exact = all(
            np.array_equal(serial.exemplars.get(c), sharded.exemplars.get(c))
            for c in serial.exemplars.classes
        )
        print()
        print(f"exemplar stores bit-exact: {exemplars_exact}")
        print(f"prototypes bit-exact:      {prototypes_exact}")
        print(
            "predictions bit-exact:     "
            f"{bool(np.array_equal(predictions['serial'], predictions['sharded']))}"
        )
        accuracy = float(np.mean(predictions["sharded"] == scenario.test.labels))
        print(f"five-activity accuracy:    {accuracy:.4f}")
    finally:
        # The learner owns the backend it built from the "sharded" name, so
        # close() reaps the worker pool.
        sharded.close()
        serial.close()


if __name__ == "__main__":
    main()
