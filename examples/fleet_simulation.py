"""Fleet simulation: one cloud broadcast serving many drifting edge devices.

Where ``quickstart.py`` walks the paper's single-device pipeline, this example
exercises the fleet subsystem (:mod:`repro.fleet`) end to end:

1. the cloud pre-trains once and exports one transfer package;
2. a :class:`~repro.fleet.FleetCoordinator` provisions several heterogeneous
   devices and deploys the package to each (independent learners);
3. a seeded Zipf traffic stream is sharded across the fleet by user id while
   each device integrates the held-out 'Run' activity at its own staggered
   tick, from its own share of the new data — so devices genuinely drift;
4. the run reports per-device serving stats, aggregate simulated throughput,
   the per-device accuracy divergence, and a checkpoint → crash → restore
   round-trip on one device;
5. the same broadcast then goes out to a 100,000-device *hierarchical* fleet
   (:class:`~repro.fleet.HierarchicalFleetCoordinator`): regions share one
   copy-on-write template each, only the device that drifts is materialised,
   and the transfer ledger shows one shipment per region rather than per
   device.  ``pilote fleet-sim --devices 1000000`` runs the same tree at
   full scale.

Run with::

    python examples/fleet_simulation.py
"""

import tempfile

import numpy as np

from repro.data import Activity, build_incremental_scenario, make_feature_dataset
from repro.core.config import PiloteConfig
from repro.edge.cloud import CloudServer
from repro.edge.device import DEVICE_PROFILES
from repro.fleet import (
    CheckpointStore,
    FleetCoordinator,
    HierarchicalFleetCoordinator,
    Router,
    TrafficGenerator,
    WorkloadSpec,
    staggered_schedule,
)
from repro.serving import PredictRequest, serve
from repro.utils.rng import spawn_rngs

SEED = 42
N_DEVICES = 4


def main() -> None:
    # 1. Cloud side: one pre-training run, one package for the whole fleet.
    dataset = make_feature_dataset(samples_per_class=200, seed=SEED)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=SEED)
    config = PiloteConfig.edge_lightweight(seed=SEED)
    cloud = CloudServer(config, seed=SEED)
    cloud.pretrain(scenario.old_train, scenario.old_validation, exemplars_per_class=50)
    package = cloud.export_package()
    print(f"cloud package: {package.total_bytes / 1024:.1f} KB")

    # 2. Provision a heterogeneous fleet and broadcast the package.
    profiles = [DEVICE_PROFILES["smartphone"], DEVICE_PROFILES["raspberry-pi"]]
    fleet = FleetCoordinator(config, profiles=profiles, seed=SEED)
    fleet.provision(N_DEVICES)
    fleet.deploy(package)
    for row in fleet.describe():
        print(f"  device {row['device_id']} ({row['profile']}): "
              f"{row['storage_used'] / 1024:.1f} KB used")

    # 3. Staggered new-activity arrival: device i learns 'Run' at tick 1 + i,
    #    each from its own subsample, so per-device accuracy diverges.
    schedule = staggered_schedule(N_DEVICES, start_tick=1, spacing_ticks=2)
    shares = spawn_rngs(SEED, N_DEVICES)
    for device_id, tick in schedule.items():
        share = scenario.new_train.subsample(
            max(scenario.new_train.n_samples // (device_id + 1), 10), rng=shares[device_id]
        )
        fleet.schedule_increment(device_id, tick, share)

    # 4. Open-loop Zipf traffic sharded across the fleet by user id.
    workload = WorkloadSpec(pattern="zipf", n_users=300, requests_per_tick=64, n_ticks=10)
    traffic = TrafficGenerator(scenario.test, workload, seed=SEED)
    router = Router(fleet.devices, seed=SEED)
    for tick, requests in enumerate(traffic.ticks()):
        done = fleet.run_due_increments(tick)
        for device_id in done:
            print(f"  tick {tick}: device {device_id} integrated 'Run'")
        router.dispatch_tick(requests)
    report = router.report()
    print(f"\nrouted {report.total_requests} requests "
          f"({report.total_windows} windows) across {len(report.per_device)} devices")
    print(f"aggregate simulated throughput: {report.aggregate_throughput:.0f} windows/s")
    for device_id, stats in sorted(report.per_device.items()):
        print(f"  device {device_id}: {stats.requests} requests, "
              f"{stats.throughput:.0f} win/s, "
              f"mean latency {stats.mean_latency_seconds * 1e3:.2f} ms, "
              f"max queue {stats.max_queue_depth}")

    # 5. Fleet divergence after the staggered increments.
    accuracy = fleet.accuracy_report(scenario.test)
    print("\nper-device accuracy on the five-activity test set:")
    for device_id, value in sorted(accuracy.per_device.items()):
        print(f"  device {device_id}: {value:.4f}")
    print(f"divergence: spread {accuracy.spread:.4f}, std {accuracy.std:.4f}")

    # 6. Crash one device, restore it from its checkpoint on fresh hardware.
    with tempfile.TemporaryDirectory() as scratch:
        store = CheckpointStore(scratch)
        checkpoint = store.save(fleet.device(0))
        restored = store.restore(checkpoint)
        probe = scenario.test.features[:128]
        identical = np.array_equal(fleet.device(0).infer(probe), restored.infer(probe))
        print(f"\ncheckpoint ({checkpoint.nbytes / 1024:.1f} KB) restored on a fresh "
              f"device; predictions identical: {identical}")
        fleet.replace_device(0, restored)

    # 7. The regional tree: the same broadcast, 100,000 devices, 8 regions.
    #    Pooled devices serve from one copy-on-write template per region; a
    #    device only gets its own learner once it actually drifts.
    tree = HierarchicalFleetCoordinator(config, seed=SEED, n_regions=8)
    tree.provision(100_000)
    tree.deploy(package)
    drifter = tree.device(12_345)  # materialised out of its region's pool
    drifter.learn_new_activity(scenario.new_train.subsample(60, rng=SEED))
    client = serve(tree, seed=SEED)  # regional routing over the lane tree
    try:
        pending = [
            client.submit(PredictRequest(user_id=user, features=scenario.test.features[:4]))
            for user in range(32)
        ]
        client.drain()
        answered = sum(p.result() is not None for p in pending)
    finally:
        client.close()
    region = tree.region_of(12_345)
    print(f"\nhierarchical fleet: {len(tree):,} devices in {tree.n_regions} regions, "
          f"{len(tree.serving_lanes())} serving lanes")
    print(f"  region {region.region_id}: {region.n_pooled:,} pooled devices + "
          f"{len(region.materialized)} materialised (device 12,345 drifted)")
    print(f"  broadcast shipped {tree.transfers.deploy_shipments} packages "
          f"({tree.transfers.deploy_bytes / 2**20:.2f} MB) instead of {len(tree):,}")
    print(f"  served {answered}/32 requests through the regional tree")


if __name__ == "__main__":
    main()
