"""Support-set budget sweep (the Figure 6 experiment at example scale).

How much accuracy does each strategy retain as the edge cache shrinks?  The
example sweeps the number of exemplars per old class, compares representative
(herding) against random exemplar selection, and reports the storage cost of
each budget — the trade-off an edge deployment actually has to make.

Run with::

    python examples/edge_budget_sweep.py
"""

from repro.core.config import PiloteConfig
from repro.data import Activity, make_feature_dataset
from repro.data.streams import build_incremental_scenario
from repro.edge.transfer import exemplar_storage_bytes
from repro.evaluation.runner import ExperimentRunner
from repro.viz.ascii import ascii_line_plot

EXEMPLAR_BUDGETS = (10, 25, 50, 100, 200)


def main() -> None:
    dataset = make_feature_dataset(samples_per_class=250, seed=13)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=13)
    config = PiloteConfig(
        hidden_dims=(128, 64),
        embedding_dim=32,
        batch_size=48,
        max_epochs_pretrain=15,
        max_epochs_increment=10,
        cache_size=800,
        seed=13,
    )
    runner = ExperimentRunner(config)
    # One shared pre-trained model for the whole sweep (only the support set changes).
    pretrained = runner.pretrain(scenario, exemplars_per_class=max(EXEMPLAR_BUDGETS), rng=13)

    series = {"pilote": [], "re-trained": [], "pre-trained": []}
    print(f"{'exemplars/class':>16}{'storage':>12}{'pre-trained':>13}{'re-trained':>12}{'pilote':>9}")
    for budget in EXEMPLAR_BUDGETS:
        comparison = runner.compare(
            scenario, pretrained=pretrained, exemplars_per_class=budget,
            exemplar_strategy="herding", rng=13,
        )
        storage_kb = exemplar_storage_bytes(
            budget * len(scenario.old_classes), dataset.n_features
        ) / 1024
        accuracies = comparison.summary()
        for method in series:
            series[method].append(accuracies[method])
        print(
            f"{budget:>16d}{storage_kb:>10.1f}KB"
            f"{accuracies['pre-trained']:>13.4f}{accuracies['re-trained']:>12.4f}"
            f"{accuracies['pilote']:>9.4f}"
        )

    print()
    print(ascii_line_plot(EXEMPLAR_BUDGETS, series, title="accuracy vs. exemplars per class"))


if __name__ == "__main__":
    main()
