"""Quickstart: incremental learning of a new activity with PILOTE.

This is the smallest complete example of the library's public API:

1. generate a MAGNETO-like synthetic HAR dataset (22 sensor channels → 80
   statistical features per one-second window);
2. hold one activity ('Run') out as the *new* class;
3. pre-train PILOTE on the cloud side with the remaining four activities;
4. learn the new activity on the edge from the support set + new samples;
5. evaluate on the full five-activity test set.

Run with::

    python examples/quickstart.py

Serving
-------

Predictions are served through the unified serving API
(:mod:`repro.serving`): ``serve(learner)`` builds a client speaking the same
typed :class:`~repro.serving.PredictRequest` /
:class:`~repro.serving.PredictResponse` protocol that also fronts a
``MagnetoPlatform`` or a whole device fleet — step 6 below uses it, and
``examples/serving_api.py`` covers futures, deadlines, routing policies and
staged rollouts.

Fleet serving
-------------

Everything here is single-device, exactly as in the paper.  To serve many
devices from one cloud broadcast — request routing, staggered per-device
increments, checkpoint/restore — see ``examples/fleet_simulation.py`` and
the :mod:`repro.fleet` package, run ``pilote fleet-sim --scale quick
--routing least-loaded`` for the end-to-end simulation, or ``pilote serve``
for the same workload answered by every serving layer.  Past ~1000 devices
the simulation switches to a hierarchical tree of regional coordinators
(``pilote fleet-sim --devices 1000000``, or ``--regions 8`` to pick the
fan-out): regions serve one pooled copy-on-write template each, devices are
only materialised when they drift, and re-syncs ship snapshot *deltas* — so
a million-device fleet runs in megabytes, not terabytes.

Distributed learning
--------------------

The update itself can go data-parallel: ``PILOTE(config, backend="sharded",
shards=4)`` fans herding and the prototype refresh out to a persistent
worker-process pool through fixed-order collectives, bit-exact with the
serial path (same exemplars, prototypes and predictions — no tolerance).
``examples/sharded_increment.py`` demonstrates and verifies it; every CLI
experiment accepts ``--backend sharded --shards N``; and
``learner.phase_seconds`` reports which phase the pool actually sped up.

Self-tuning control
-------------------

Under overload or failures the serving stack can close the loop on its own
SLO reports: ``serve(..., adaptive=True)`` attaches the default control
stack from :mod:`repro.control` — load-shedding admission control, hedged
requests that race a clone past a dying or backlogged lane, and an
autoscaler that grows/shrinks worker pools from queue depth and rolling
deadline attainment. ``examples/control_plane.py`` walks through the
controllers and the chaos suite (``pilote chaos``) that proves no request
is ever dropped or double-answered while they act.

Network serving
---------------

To serve *outside* callers over a real socket, :mod:`repro.server` puts an
asyncio front door on the same serving stack: ``pilote serve-net`` hosts a
fleet behind a length-prefixed binary wire protocol (typed error frames,
per-client backpressure, graceful shutdown), and ``pilote bench-client``
drives it closed-loop with end-to-end p50/p99 and SLO attainment reporting
— see ``examples/async_serving.py`` for the bridge, server and load layers
used directly from ``asyncio``.

Correctness tooling
-------------------

The conventions all of the above relies on — seeded RNG streams, the
simulated-vs-wall clock split, typed serving errors, registry completeness —
are machine-checked by :mod:`repro.analysis`: ``pilote lint`` runs the
repo's AST invariant linter (exit non-zero on findings; ``--format json``
for CI artifacts, ``# repro: noqa[rule-id] reason`` to suppress a justified
exception), and ``pilote chaos --sanitize`` (or ``REPRO_SANITIZE=1`` for
the test suite) re-runs the failure-injection scenarios under a runtime
race sanitizer that asserts the stack's single-writer discipline.  The
README's "Correctness tooling" section documents every rule id.
"""

from repro import PILOTE, PiloteConfig
from repro.data import Activity, build_incremental_scenario, make_feature_dataset
from repro.metrics.classification import classification_report
from repro.metrics.forgetting import new_class_accuracy, old_class_accuracy
from repro.serving import PredictRequest, serve


def main() -> None:
    # 1. Synthetic five-activity dataset (the paper's proprietary data is replaced
    #    by a parametric generator with the same class-similarity structure).
    dataset = make_feature_dataset(samples_per_class=250, seed=42)
    print(f"dataset: {dataset.n_samples} windows x {dataset.n_features} features")

    # 2. Class-incremental scenario: 'Run' is unknown at pre-training time.
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=42)
    print(f"old classes: {[dataset.class_name(c) for c in scenario.old_classes]}")
    print(f"new classes: {[dataset.class_name(c) for c in scenario.new_classes]}")

    # 3. Cloud pre-training (contrastive Siamese embedding + herded support set).
    config = PiloteConfig.edge_lightweight(seed=42)
    learner = PILOTE(config)
    history = learner.pretrain(
        scenario.old_train, scenario.old_validation, exemplars_per_class=100
    )
    print(f"pre-training: {history.epochs_run} epochs, final loss {history.final_train_loss():.4f}")

    old_test = scenario.test.select_classes(scenario.old_classes)
    print(f"accuracy on old classes before the increment: {learner.evaluate(old_test):.4f}")

    # 4. Edge-side incremental learning of 'Run' (joint distillation + contrastive loss).
    history = learner.learn_new_classes(scenario.new_train, scenario.new_validation)
    print(f"incremental update: {history.epochs_run} epochs")

    # 5. Evaluation on all five activities.
    predictions = learner.predict(scenario.test.features)
    print()
    print(classification_report(scenario.test.labels, predictions,
                                label_names=dataset.label_names))
    print()
    print(f"old-class accuracy after the increment: "
          f"{old_class_accuracy(scenario.test.labels, predictions, scenario.old_classes):.4f}")
    print(f"new-class accuracy after the increment: "
          f"{new_class_accuracy(scenario.test.labels, predictions, scenario.new_classes):.4f}")
    print()
    footprint = learner.memory_footprint()
    print(f"edge footprint: model {footprint['model_bytes'] / 1024:.1f} KB, "
          f"support set {footprint['support_set_bytes'] / 1024:.1f} KB")

    # 6. Serving through the unified API: the same client (and request/
    #    response types) would front a MagnetoPlatform or an N-device fleet,
    #    and serve(..., executor="process", workers=N) would run the same
    #    batches on real worker processes instead of inline (see
    #    examples/serving_api.py step 6).
    client = serve(learner)
    pending = client.submit(
        PredictRequest(user_id=7, features=scenario.test.features[:4])
    )
    client.drain()
    response = pending.result()
    print()
    print(f"served {response.n_windows} windows for user {response.user_id} "
          f"in {response.latency_seconds * 1e3:.2f} ms (simulated) "
          f"on device {response.device_id}")


if __name__ == "__main__":
    main()
