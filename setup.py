"""Setuptools entry point.

The declarative configuration lives in ``pyproject.toml``; this shim exists so
that editable installs work in offline environments where the ``wheel``
package (needed for PEP 660 editable wheels) is unavailable.
"""

from setuptools import setup

setup()
